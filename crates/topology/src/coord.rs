//! Multi-dimensional switch coordinates.

use crate::{SwitchId, TopologyError};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Maximum number of switch dimensions supported (a *k*-ary *n*-flat has
/// `n - 1` switch dimensions; `n ≤ 9` covers every practical build — the
/// paper's largest example is an 8-ary 5-flat).
pub const MAX_DIMS: usize = 8;

/// The position of a switch in the `n - 1` dimensional grid of a flattened
/// butterfly (or mesh/torus view of it).
///
/// Digit `0` is the *lowest* (intra-group, electrically cabled) dimension.
/// Coordinates convert to and from dense [`SwitchId`]s in mixed-radix
/// little-endian order: `id = Σ digits[d] · k^d`.
///
/// ```
/// use epnet_topology::Coord;
/// let c = Coord::from_switch_index(27, 8, 2);
/// assert_eq!(c.digits(), &[3, 3]);
/// assert_eq!(c.to_switch_index(8), 27);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Coord {
    digits: [u16; MAX_DIMS],
    len: u8,
}

impl Coord {
    /// Builds a coordinate from explicit digits.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::TooManyDimensions`] if more than
    /// `MAX_DIMS` (8) digits are supplied.
    pub fn new(digits: &[u16]) -> Result<Self, TopologyError> {
        if digits.len() > MAX_DIMS {
            return Err(TopologyError::TooManyDimensions {
                dims: digits.len(),
                max: MAX_DIMS,
            });
        }
        let mut buf = [0u16; MAX_DIMS];
        buf[..digits.len()].copy_from_slice(digits);
        Ok(Self {
            digits: buf,
            len: digits.len() as u8,
        })
    }

    /// Decomposes a dense switch index into a base-`radix` coordinate with
    /// `dims` digits (little-endian: digit 0 varies fastest).
    ///
    /// # Panics
    ///
    /// Panics if `dims > MAX_DIMS` or `radix == 0`; use
    /// [`FlattenedButterfly::new`](crate::FlattenedButterfly::new) for
    /// validated construction.
    pub fn from_switch_index(index: usize, radix: u16, dims: usize) -> Self {
        assert!(dims <= MAX_DIMS, "dims {dims} exceeds MAX_DIMS {MAX_DIMS}");
        assert!(radix > 0, "radix must be positive");
        let mut digits = [0u16; MAX_DIMS];
        let mut rest = index;
        for d in digits.iter_mut().take(dims) {
            *d = (rest % radix as usize) as u16;
            rest /= radix as usize;
        }
        debug_assert_eq!(rest, 0, "switch index {index} out of range");
        Self {
            digits,
            len: dims as u8,
        }
    }

    /// Recomposes the dense switch index for the given radix.
    pub fn to_switch_index(self, radix: u16) -> usize {
        self.digits()
            .iter()
            .rev()
            .fold(0usize, |acc, &d| acc * radix as usize + d as usize)
    }

    /// Convenience wrapper returning a typed [`SwitchId`].
    pub fn to_switch_id(self, radix: u16) -> SwitchId {
        SwitchId::new(self.to_switch_index(radix) as u32)
    }

    /// The digits of the coordinate, lowest dimension first.
    #[inline]
    pub fn digits(&self) -> &[u16] {
        &self.digits[..self.len as usize]
    }

    /// Number of dimensions.
    #[inline]
    pub fn dims(&self) -> usize {
        self.len as usize
    }

    /// The digit in dimension `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `dim >= self.dims()`.
    #[inline]
    pub fn digit(&self, dim: usize) -> u16 {
        self.digits()[dim]
    }

    /// Returns a copy with dimension `dim` replaced by `value`.
    ///
    /// # Panics
    ///
    /// Panics if `dim >= self.dims()`.
    pub fn with_digit(mut self, dim: usize, value: u16) -> Self {
        assert!(dim < self.dims(), "dimension {dim} out of range");
        self.digits[dim] = value;
        self
    }

    /// Number of dimensions in which `self` and `other` differ — the
    /// minimal inter-switch hop count in a flattened butterfly (the
    /// "rook moves" of the paper's chessboard metaphor, §2.1).
    pub fn hop_distance(&self, other: &Coord) -> usize {
        debug_assert_eq!(self.dims(), other.dims());
        self.digits()
            .iter()
            .zip(other.digits())
            .filter(|(a, b)| a != b)
            .count()
    }
}

impl fmt::Debug for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Coord{:?}", self.digits())
    }
}

impl fmt::Display for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, d) in self.digits().iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_switches() {
        for radix in [2u16, 3, 8, 15] {
            for dims in 1..=3usize {
                let count = (radix as usize).pow(dims as u32);
                for idx in 0..count {
                    let c = Coord::from_switch_index(idx, radix, dims);
                    assert_eq!(c.to_switch_index(radix), idx);
                    assert_eq!(c.dims(), dims);
                }
            }
        }
    }

    #[test]
    fn hop_distance_counts_differing_dims() {
        let a = Coord::new(&[1, 2, 3]).unwrap();
        let b = Coord::new(&[1, 5, 4]).unwrap();
        assert_eq!(a.hop_distance(&b), 2);
        assert_eq!(a.hop_distance(&a), 0);
    }

    #[test]
    fn with_digit_replaces_one_dimension() {
        let a = Coord::new(&[7, 0]).unwrap();
        let b = a.with_digit(1, 4);
        assert_eq!(b.digits(), &[7, 4]);
        assert_eq!(a.digits(), &[7, 0], "original is unchanged");
    }

    #[test]
    fn too_many_dims_is_an_error() {
        let digits = [0u16; MAX_DIMS + 1];
        assert!(matches!(
            Coord::new(&digits),
            Err(TopologyError::TooManyDimensions { .. })
        ));
    }

    #[test]
    fn display_formats_digits() {
        let c = Coord::new(&[3, 1]).unwrap();
        assert_eq!(c.to_string(), "(3,1)");
        assert_eq!(format!("{c:?}"), "Coord[3, 1]");
    }

    #[test]
    fn little_endian_digit_order() {
        // Switch 27 in an 8-ary grid: 27 = 3 + 3*8.
        let c = Coord::from_switch_index(27, 8, 2);
        assert_eq!(c.digit(0), 3);
        assert_eq!(c.digit(1), 3);
        let c = Coord::from_switch_index(17, 15, 2);
        assert_eq!(c.digits(), &[2, 1]);
    }
}
