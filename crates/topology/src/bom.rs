//! Bill of materials: the part counts behind the paper's capital- and
//! operational-expenditure arguments (§2.1–2.2: optical transceivers
//! "tend to dominate the capital expenditure of the interconnect").

use crate::{FlattenedButterfly, FoldedClos, Medium, TwoTierClos};
use serde::{Deserialize, Serialize};

/// First-order part counts of a network build.
///
/// ```
/// use epnet_topology::{BillOfMaterials, FlattenedButterfly};
/// let bom = BillOfMaterials::for_fbfly(&FlattenedButterfly::paper_comparison_32k());
/// // Each optical link needs a transceiver at both ends.
/// assert_eq!(bom.optical_transceivers, 2 * 43_008);
/// assert_eq!(bom.switch_chips, 4_096);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BillOfMaterials {
    /// Switch chips to purchase.
    pub switch_chips: u64,
    /// Host NICs.
    pub nics: u64,
    /// Passive copper cables (one per electrical link).
    pub copper_cables: u64,
    /// Optical cables (one per optical link).
    pub optical_cables: u64,
    /// Optical transceivers (two per optical link).
    pub optical_transceivers: u64,
}

impl BillOfMaterials {
    /// Parts for a flattened butterfly.
    pub fn for_fbfly(f: &FlattenedButterfly) -> Self {
        let optical = f.link_count(Medium::Optical) as u64;
        Self {
            switch_chips: f.num_switches() as u64,
            nics: f.num_hosts() as u64,
            copper_cables: f.link_count(Medium::Electrical) as u64,
            optical_cables: optical,
            optical_transceivers: 2 * optical,
        }
    }

    /// Parts for the paper's chassis-based folded Clos (purchased, not
    /// fractional-powered, chip count).
    pub fn for_clos(c: &FoldedClos) -> Self {
        let optical = c.link_count(Medium::Optical);
        Self {
            switch_chips: c.chips_purchased(),
            nics: c.num_hosts(),
            copper_cables: c.link_count(Medium::Electrical),
            optical_cables: optical,
            optical_transceivers: 2 * optical,
        }
    }

    /// Parts for a two-tier Clos.
    pub fn for_two_tier(c: &TwoTierClos) -> Self {
        let optical = c.link_count(Medium::Optical) as u64;
        Self {
            switch_chips: c.num_switches() as u64,
            nics: c.num_hosts() as u64,
            copper_cables: c.link_count(Medium::Electrical) as u64,
            optical_cables: optical,
            optical_transceivers: 2 * optical,
        }
    }

    /// Total cable count.
    pub fn total_cables(&self) -> u64 {
        self.copper_cables + self.optical_cables
    }

    /// Component-wise difference (`self − other`), saturating at zero —
    /// "how much less hardware does this build need?"
    pub fn savings_vs(&self, other: &Self) -> Self {
        Self {
            switch_chips: other.switch_chips.saturating_sub(self.switch_chips),
            nics: other.nics.saturating_sub(self.nics),
            copper_cables: other.copper_cables.saturating_sub(self.copper_cables),
            optical_cables: other.optical_cables.saturating_sub(self.optical_cables),
            optical_transceivers: other
                .optical_transceivers
                .saturating_sub(self.optical_transceivers),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_32k_comparison() {
        let fbfly = BillOfMaterials::for_fbfly(&FlattenedButterfly::paper_comparison_32k());
        let clos = BillOfMaterials::for_clos(&FoldedClos::paper_comparison_32k());
        // §2.2: "it uses fewer optical transceivers and fewer switching
        // chips than a comparable folded-Clos".
        let saved = fbfly.savings_vs(&clos);
        assert_eq!(saved.switch_chips, 8_235 - 4_096);
        assert_eq!(saved.optical_transceivers, 2 * (65_536 - 43_008));
        assert_eq!(fbfly.nics, clos.nics);
        assert_eq!(fbfly.total_cables(), 47_104 + 43_008);
    }

    #[test]
    fn two_tier_parts() {
        let c = TwoTierClos::non_blocking(8).unwrap();
        let bom = BillOfMaterials::for_two_tier(&c);
        assert_eq!(bom.switch_chips, 24);
        assert_eq!(bom.nics, 128);
        assert_eq!(bom.copper_cables, 128);
        assert_eq!(bom.optical_cables, 128);
        assert_eq!(bom.optical_transceivers, 256);
    }

    #[test]
    fn savings_saturate() {
        let small = BillOfMaterials::for_fbfly(&FlattenedButterfly::new(2, 4, 2).unwrap());
        let big = BillOfMaterials::for_fbfly(&FlattenedButterfly::new(8, 8, 3).unwrap());
        let s = big.savings_vs(&small);
        assert_eq!(s.switch_chips, 0, "bigger build saves nothing");
    }
}
