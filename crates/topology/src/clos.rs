//! The folded-Clos (fat tree) baseline topology (§2.2).

use crate::{Medium, TopologyError};
use serde::{Deserialize, Serialize};

/// A multi-port, non-blocking router chassis assembled internally from
/// smaller switch chips, as the paper does: "we use 27 36-port switches to
/// build a 324-port non-blocking router chassis" (§2.2).
///
/// A `P`-port chassis built from radix-`r` chips uses `2P/r` leaf chips
/// (half their ports external, half toward the spine) and `P/r` spine
/// chips — `3P/r` chips total.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ChassisSpec {
    chip_radix: u16,
    chassis_ports: u32,
}

impl ChassisSpec {
    /// Builds a chassis spec.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::InvalidChassis`] unless `chip_radix` is
    /// even and `chassis_ports` is a positive multiple of
    /// `chip_radix / 2`.
    pub fn new(chip_radix: u16, chassis_ports: u32) -> Result<Self, TopologyError> {
        let invalid = chip_radix < 2
            || chip_radix % 2 != 0
            || chassis_ports == 0
            || chassis_ports % u32::from(chip_radix / 2) != 0
            || (2 * chassis_ports) % u32::from(chip_radix) != 0;
        if invalid {
            return Err(TopologyError::InvalidChassis {
                chip_radix,
                chassis_ports,
            });
        }
        Ok(Self {
            chip_radix,
            chassis_ports,
        })
    }

    /// The paper's chassis: 324 external ports from 27 radix-36 chips.
    pub fn paper_324_port() -> Self {
        Self::new(36, 324).expect("paper chassis spec is valid")
    }

    /// Radix of the constituent switch chips.
    #[inline]
    pub fn chip_radix(&self) -> u16 {
        self.chip_radix
    }

    /// External ports per chassis.
    #[inline]
    pub fn chassis_ports(&self) -> u32 {
        self.chassis_ports
    }

    /// Leaf chips per chassis (`2P/r`).
    pub fn leaf_chips(&self) -> u32 {
        2 * self.chassis_ports / u32::from(self.chip_radix)
    }

    /// Spine chips per chassis (`P/r`).
    pub fn spine_chips(&self) -> u32 {
        self.chassis_ports / u32::from(self.chip_radix)
    }

    /// Total chips per chassis (`3P/r`).
    pub fn chips(&self) -> u32 {
        self.leaf_chips() + self.spine_chips()
    }
}

/// The paper's folded-Clos comparison network: hosts hang off *stage-2*
/// chassis (half their ports down, half up), which connect to *stage-3*
/// (core) chassis for a fully non-blocking fabric (§2.2).
///
/// All part-count accounting follows the paper exactly, including its two
/// subtleties:
///
/// * chips *purchased* use rounded-up chassis counts
///   (`⌈N/324⌉ = 102` stage-3 and `⌈N/162⌉ = 203` stage-2 → 8,235 chips),
/// * chips *powered* use the exact fractional port demand (footnote 5:
///   "there are some unused ports which we do not count in the power
///   analysis") — `27·(N/162 + N/324) = 9N/r = 8,192` chips.
///
/// # Example
///
/// ```
/// use epnet_topology::FoldedClos;
/// let clos = FoldedClos::paper_comparison_32k();
/// assert_eq!(clos.chips_purchased(), 8_235);
/// assert_eq!(clos.chips_powered(), 8_192.0);
/// # Ok::<(), epnet_topology::TopologyError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FoldedClos {
    hosts: u64,
    chassis: ChassisSpec,
}

impl FoldedClos {
    /// Builds a folded-Clos for `hosts` terminals over the given chassis.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::NoHosts`] if `hosts == 0`.
    pub fn new(hosts: u64, chassis: ChassisSpec) -> Result<Self, TopologyError> {
        if hosts == 0 {
            return Err(TopologyError::NoHosts);
        }
        Ok(Self { hosts, chassis })
    }

    /// The paper's Table-1 configuration: 32,768 hosts on 324-port
    /// chassis of radix-36 chips.
    pub fn paper_comparison_32k() -> Self {
        Self::new(32_768, ChassisSpec::paper_324_port()).expect("paper config is valid")
    }

    /// Number of hosts.
    #[inline]
    pub fn num_hosts(&self) -> u64 {
        self.hosts
    }

    /// The chassis building block.
    #[inline]
    pub fn chassis(&self) -> ChassisSpec {
        self.chassis
    }

    /// Stage-2 (edge) chassis count: each serves `P/2` hosts downward.
    pub fn stage2_chassis(&self) -> u64 {
        self.hosts
            .div_ceil(u64::from(self.chassis.chassis_ports) / 2)
    }

    /// Stage-3 (core) chassis count: `⌈N/P⌉`.
    pub fn stage3_chassis(&self) -> u64 {
        self.hosts.div_ceil(u64::from(self.chassis.chassis_ports))
    }

    /// Switch chips purchased: whole chassis times chips per chassis.
    pub fn chips_purchased(&self) -> u64 {
        (self.stage2_chassis() + self.stage3_chassis()) * u64::from(self.chassis.chips())
    }

    /// Switch chips actually powered, using the paper's exact fractional
    /// accounting (`9N/r` for this chassis construction — unused ports are
    /// free).
    pub fn chips_powered(&self) -> f64 {
        9.0 * self.hosts as f64 / f64::from(self.chassis.chip_radix)
    }

    /// Bidirectional link count by medium, per the paper's accounting:
    ///
    /// * *Electrical* — used chassis-backplane links. A chassis traversal
    ///   consumes one leaf↔spine backplane link per two used external
    ///   ports: stage-2 chassis contribute `N`, stage-3 contribute `N/2`.
    /// * *Optical* — host↔stage-2 links (`N`, hosts sit across the machine
    ///   room from the chassis) plus stage-2↔stage-3 links (`N`).
    pub fn link_count(&self, medium: Medium) -> u64 {
        match medium {
            Medium::Electrical => self.hosts + self.hosts / 2,
            Medium::Optical => 2 * self.hosts,
        }
    }

    /// Total counted links.
    pub fn total_links(&self) -> u64 {
        self.link_count(Medium::Electrical) + self.link_count(Medium::Optical)
    }

    /// Bisection bandwidth in Gb/s at the given per-channel rate. The
    /// fabric is non-blocking, so the bisection equals half the hosts'
    /// injection bandwidth — the convention under which Table 1 reports
    /// 655 Tb/s.
    pub fn bisection_gbps(&self, link_gbps: f64) -> f64 {
        self.hosts as f64 / 2.0 * link_gbps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_chassis_is_27_chips() {
        let c = ChassisSpec::paper_324_port();
        assert_eq!(c.leaf_chips(), 18);
        assert_eq!(c.spine_chips(), 9);
        assert_eq!(c.chips(), 27);
    }

    #[test]
    fn paper_table1_clos_part_counts() {
        let clos = FoldedClos::paper_comparison_32k();
        // §2.2: "S_stage3 = ⌈32k/324⌉ = 102, S_stage2 = ⌈32k/(324/2)⌉ = 203".
        assert_eq!(clos.stage3_chassis(), 102);
        assert_eq!(clos.stage2_chassis(), 203);
        // "S_Clos = 27 × 305 = 8,235".
        assert_eq!(clos.chips_purchased(), 8_235);
        // Footnote 5 / Table 1 power row implies 8,192 powered chips.
        assert_eq!(clos.chips_powered(), 8_192.0);
        // Table 1 link rows.
        assert_eq!(clos.link_count(Medium::Electrical), 49_152);
        assert_eq!(clos.link_count(Medium::Optical), 65_536);
        // Table 1 bisection row: 655 Tb/s.
        assert_eq!(clos.bisection_gbps(40.0), 655_360.0);
    }

    #[test]
    fn invalid_chassis_rejected() {
        assert!(ChassisSpec::new(0, 324).is_err());
        assert!(ChassisSpec::new(35, 324).is_err()); // odd radix
        assert!(ChassisSpec::new(36, 0).is_err());
        assert!(ChassisSpec::new(36, 100).is_err()); // not multiple of 18
    }

    #[test]
    fn no_hosts_rejected() {
        assert!(matches!(
            FoldedClos::new(0, ChassisSpec::paper_324_port()),
            Err(TopologyError::NoHosts)
        ));
    }

    #[test]
    fn scaling_preserves_chip_ratio() {
        // The powered-chip formula 9N/r is scale-free: doubling hosts
        // doubles powered chips.
        let a = FoldedClos::new(16_384, ChassisSpec::paper_324_port()).unwrap();
        let b = FoldedClos::new(32_768, ChassisSpec::paper_324_port()).unwrap();
        assert_eq!(b.chips_powered(), 2.0 * a.chips_powered());
    }

    #[test]
    fn total_links_sum() {
        let clos = FoldedClos::paper_comparison_32k();
        assert_eq!(clos.total_links(), 49_152 + 65_536);
    }
}
