//! The flattened butterfly (FBFLY) *k*-ary *n*-flat topology (§2.1).

use crate::{Coord, FabricGraph, HostId, Medium, PortIndex, SwitchId, TopologyError};
use serde::{Deserialize, Serialize};

/// A flattened butterfly *k*-ary *n*-flat with concentration *c*, written
/// `(c, k, n)` as in §2.1.1 of the paper.
///
/// * `k` — radix of each dimension: within a dimension all `k` switches are
///   fully connected ("packets traverse the flattened butterfly in the same
///   manner that a rook moves on a chessboard").
/// * `n` — the *flat* dimension count; the switches form an
///   `(n - 1)`-dimensional grid of `k^(n-1)` switches.
/// * `c` — concentration: hosts attached to each switch. `c = k` yields no
///   over-subscription; `c > k` over-subscribes the network `c : k`
///   (the paper's example: `(12, 8, 4)` is over-subscribed 3:2).
///
/// Each switch needs `p = c + (k − 1)(n − 1)` ports.
///
/// # Example
///
/// ```
/// use epnet_topology::FlattenedButterfly;
///
/// // Paper §2.1.1: a (12, 8, 4) scales to 12 · 8^3 = 6144 hosts on
/// // 33-port routers.
/// let f = FlattenedButterfly::new(12, 8, 4)?;
/// assert_eq!(f.num_hosts(), 6144);
/// assert_eq!(f.ports_per_switch(), 33);
/// assert_eq!(f.oversubscription(), 1.5);
/// # Ok::<(), epnet_topology::TopologyError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FlattenedButterfly {
    concentration: u16,
    radix: u16,
    flat_n: usize,
}

impl FlattenedButterfly {
    /// Builds a `(c, k, n)` flattened butterfly.
    ///
    /// # Errors
    ///
    /// * [`TopologyError::ZeroConcentration`] if `c == 0`.
    /// * [`TopologyError::RadixTooSmall`] if `k < 2`.
    /// * [`TopologyError::TooFewDimensions`] if `n < 2`.
    /// * [`TopologyError::TooManyDimensions`] if `n - 1` exceeds the
    ///   supported coordinate width.
    /// * [`TopologyError::TooLarge`] if entity counts overflow `u32`.
    pub fn new(concentration: u16, radix: u16, flat_n: usize) -> Result<Self, TopologyError> {
        if concentration == 0 {
            return Err(TopologyError::ZeroConcentration);
        }
        if radix < 2 {
            return Err(TopologyError::RadixTooSmall { k: radix });
        }
        if flat_n < 2 {
            return Err(TopologyError::TooFewDimensions { n: flat_n });
        }
        if flat_n - 1 > crate::coord::MAX_DIMS {
            return Err(TopologyError::TooManyDimensions {
                dims: flat_n - 1,
                max: crate::coord::MAX_DIMS,
            });
        }
        let switches = (radix as u128).pow((flat_n - 1) as u32);
        let hosts = switches * concentration as u128;
        if hosts > u32::MAX as u128 || switches > u32::MAX as u128 {
            return Err(TopologyError::TooLarge { what: "hosts" });
        }
        let this = Self {
            concentration,
            radix,
            flat_n,
        };
        // Channel ids must also stay dense in u32.
        let channels = hosts + switches * this.ports_per_switch() as u128;
        if channels > u32::MAX as u128 {
            return Err(TopologyError::TooLarge { what: "channels" });
        }
        Ok(this)
    }

    /// The paper's evaluation network: a 15-ary 3-flat with `c = 15`
    /// (3,375 hosts on 225 switches, §4.1).
    pub fn paper_evaluation() -> Self {
        Self::new(15, 15, 3).expect("paper evaluation config is valid")
    }

    /// A *grouped* `(c, k, n)` flat: the concentration is chosen
    /// independently of the radix, the way Solnushkin's automated
    /// design-space configurations size real machines — pick the port
    /// split that hits a host-count target instead of forcing `c = k`.
    ///
    /// Semantically this is just [`FlattenedButterfly::new`]; the
    /// constructor exists to name the sweep targets the scale bench
    /// uses: `grouped(15, 8, 3)` is a 960-host 15-ary 3-flat on
    /// 29-port switches, `grouped(32, 16, 4)` reaches 131,072 hosts on
    /// 4,096 switches of 77 ports — the 10^5-host point of the
    /// hybrid-model sweep — and `grouped(32, 32, 4)` is the
    /// 2^20 = 1,048,576-host point on 32,768 switches of 125 ports.
    ///
    /// # Errors
    ///
    /// Same validation as [`FlattenedButterfly::new`].
    pub fn grouped(concentration: u16, radix: u16, flat_n: usize) -> Result<Self, TopologyError> {
        Self::new(concentration, radix, flat_n)
    }

    /// The paper's 32k-host comparison network: an 8-ary 5-flat with
    /// `c = 8` (Table 1).
    pub fn paper_comparison_32k() -> Self {
        Self::new(8, 8, 5).expect("paper comparison config is valid")
    }

    /// Concentration `c`: hosts per switch.
    #[inline]
    pub fn concentration(&self) -> u16 {
        self.concentration
    }

    /// Radix `k` of each dimension.
    #[inline]
    pub fn radix(&self) -> u16 {
        self.radix
    }

    /// The flat dimension count `n` (so there are `n − 1` switch
    /// dimensions).
    #[inline]
    pub fn flat_n(&self) -> usize {
        self.flat_n
    }

    /// Number of switch dimensions, `n − 1`.
    #[inline]
    pub fn switch_dims(&self) -> usize {
        self.flat_n - 1
    }

    /// Number of switch chips, `k^(n−1)`.
    pub fn num_switches(&self) -> usize {
        (self.radix as usize).pow(self.switch_dims() as u32)
    }

    /// Number of hosts, `c · k^(n−1)`.
    pub fn num_hosts(&self) -> usize {
        self.concentration as usize * self.num_switches()
    }

    /// Ports per switch, `p = c + (k − 1)(n − 1)` (§2.2).
    pub fn ports_per_switch(&self) -> u16 {
        self.concentration + (self.radix - 1) * self.switch_dims() as u16
    }

    /// Over-subscription ratio `c / k` (1.0 means full bisection).
    pub fn oversubscription(&self) -> f64 {
        f64::from(self.concentration) / f64::from(self.radix)
    }

    /// Fraction of links that can be electrical thanks to packaging
    /// locality: `f_e = ((k − 1) + c) / (c + (k − 1)(n − 1))` (§2.2).
    pub fn electrical_link_fraction(&self) -> f64 {
        f64::from(self.radix - 1 + self.concentration) / f64::from(self.ports_per_switch())
    }

    /// Total number of bidirectional inter-switch links.
    pub fn inter_switch_links(&self) -> usize {
        // Each of the n−1 dimensions contributes k^(n−2) fully-connected
        // groups of C(k, 2) links.
        self.switch_dims() * self.num_switches() * (self.radix as usize - 1) / 2
    }

    /// Number of bidirectional links of the given medium.
    ///
    /// Host links and the lowest (intra-group) dimension use inexpensive
    /// electrical cabling; all higher dimensions require optics (§2.2:
    /// "the first dimension, which interconnects all the switches within a
    /// local domain, can use short (<1m) electrical links").
    pub fn link_count(&self, medium: Medium) -> usize {
        let per_dim = self.num_switches() * (self.radix as usize - 1) / 2;
        match medium {
            Medium::Electrical => self.num_hosts() + per_dim,
            Medium::Optical => (self.switch_dims() - 1) * per_dim,
        }
    }

    /// Total bidirectional links including host links.
    pub fn total_links(&self) -> usize {
        self.num_hosts() + self.inter_switch_links()
    }

    /// Bisection bandwidth in Gb/s for the given per-channel rate,
    /// counting both directions of the cut (the convention under which
    /// Table 1 reports 655 Tb/s for the 32k networks).
    ///
    /// The minimum cut splits one dimension into ⌊k/2⌋ and ⌈k/2⌉ digits;
    /// each of the `k^(n−2)` groups contributes ⌊k/2⌋·⌈k/2⌉ crossing links.
    pub fn bisection_gbps(&self, link_gbps: f64) -> f64 {
        let k = self.radix as usize;
        let groups = self.num_switches() / k;
        let crossing = groups * (k / 2) * k.div_ceil(2);
        2.0 * crossing as f64 * link_gbps
    }

    /// Coordinate of a switch in the `(n−1)`-dimensional grid.
    pub fn switch_coord(&self, switch: SwitchId) -> Coord {
        Coord::from_switch_index(switch.index(), self.radix, self.switch_dims())
    }

    /// The switch a host attaches to (hosts are distributed round-robin in
    /// blocks of `c`).
    pub fn host_switch(&self, host: HostId) -> SwitchId {
        SwitchId::new((host.index() / self.concentration as usize) as u32)
    }

    /// The port on [`Self::host_switch`] that `host` occupies
    /// (ports `0..c` are host ports).
    pub fn host_port(&self, host: HostId) -> PortIndex {
        PortIndex::new((host.index() % self.concentration as usize) as u16)
    }

    /// The host attached to `(switch, port)`, if `port` is a host port.
    pub fn port_host(&self, switch: SwitchId, port: PortIndex) -> Option<HostId> {
        (port.index() < self.concentration as usize).then(|| {
            HostId::new((switch.index() * self.concentration as usize + port.index()) as u32)
        })
    }

    /// The output port on `switch` leading to the peer with digit
    /// `peer_digit` in dimension `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is out of range, `peer_digit >= k`, or `peer_digit`
    /// equals the switch's own digit (there is no self-link).
    pub fn port_toward(&self, switch: SwitchId, dim: usize, peer_digit: u16) -> PortIndex {
        assert!(dim < self.switch_dims(), "dimension {dim} out of range");
        assert!(peer_digit < self.radix, "peer digit out of range");
        let own = self.switch_coord(switch).digit(dim);
        assert_ne!(own, peer_digit, "no self-link within a dimension");
        let off = if peer_digit < own {
            peer_digit
        } else {
            peer_digit - 1
        };
        PortIndex::new(self.concentration + dim as u16 * (self.radix - 1) + off)
    }

    /// Decodes an inter-switch port into `(dim, peer_digit)` — the inverse
    /// of [`Self::port_toward`]. Returns `None` for host ports.
    pub fn port_peer_digit(&self, switch: SwitchId, port: PortIndex) -> Option<(usize, u16)> {
        let p = port.raw().checked_sub(self.concentration)?;
        let dim = (p / (self.radix - 1)) as usize;
        if dim >= self.switch_dims() {
            return None;
        }
        let off = p % (self.radix - 1);
        let own = self.switch_coord(switch).digit(dim);
        let digit = if off < own { off } else { off + 1 };
        Some((dim, digit))
    }

    /// The switch and input port on the far side of inter-switch port
    /// `(switch, port)`. Returns `None` for host ports.
    ///
    /// Links are symmetric: the peer's return port is
    /// `port_toward(peer, dim, own_digit)`.
    pub fn port_peer(&self, switch: SwitchId, port: PortIndex) -> Option<(SwitchId, PortIndex)> {
        let (dim, digit) = self.port_peer_digit(switch, port)?;
        let coord = self.switch_coord(switch);
        let peer = coord.with_digit(dim, digit).to_switch_id(self.radix);
        let back = self.port_toward(peer, dim, coord.digit(dim));
        Some((peer, back))
    }

    /// Minimal inter-switch hop count between two switches.
    pub fn hop_distance(&self, a: SwitchId, b: SwitchId) -> usize {
        self.switch_coord(a).hop_distance(&self.switch_coord(b))
    }

    /// Lowers the analytical model into the port-level [`FabricGraph`]
    /// consumed by the simulator.
    pub fn build_fabric(&self) -> FabricGraph {
        FabricGraph::from_fbfly(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_table1_fbfly_part_counts() {
        let f = FlattenedButterfly::paper_comparison_32k();
        assert_eq!(f.num_hosts(), 32_768);
        assert_eq!(f.num_switches(), 4_096);
        assert_eq!(f.ports_per_switch(), 36);
        assert_eq!(f.link_count(Medium::Electrical), 47_104);
        assert_eq!(f.link_count(Medium::Optical), 43_008);
        assert_eq!(f.bisection_gbps(40.0), 655_360.0);
    }

    #[test]
    fn paper_evaluation_network() {
        let f = FlattenedButterfly::paper_evaluation();
        assert_eq!(f.num_hosts(), 3_375);
        assert_eq!(f.num_switches(), 225);
        assert_eq!(f.ports_per_switch(), 43);
        assert_eq!(f.oversubscription(), 1.0);
    }

    #[test]
    fn electrical_fraction_matches_paper() {
        // §2.2: "In this case 15/36 ≈ 42% of the FBFLY links are
        // inexpensive, lower-power, electrical links."
        let f = FlattenedButterfly::paper_comparison_32k();
        let fe = f.electrical_link_fraction();
        assert!((fe - 15.0 / 36.0).abs() < 1e-12);
    }

    #[test]
    fn oversubscribed_example_from_paper() {
        // §2.1.1 / Figure 3: (12, 8, 4) needs a 33-port router and scales
        // to 6144 nodes with 3:2 over-subscription.
        let f = FlattenedButterfly::new(12, 8, 4).unwrap();
        assert_eq!(f.ports_per_switch(), 33);
        assert_eq!(f.num_hosts(), 6_144);
        assert!((f.oversubscription() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn eight_ary_two_flat_is_figure_2() {
        // Figure 2: 8-ary 2-flat, 64 nodes, eight 15-port switches.
        let f = FlattenedButterfly::new(8, 8, 2).unwrap();
        assert_eq!(f.num_hosts(), 64);
        assert_eq!(f.num_switches(), 8);
        assert_eq!(f.ports_per_switch(), 15);
        // §2.1: scaling to an 8-ary 3-flat gives 512 nodes on 64 switches
        // with 22 ports each.
        let f3 = FlattenedButterfly::new(8, 8, 3).unwrap();
        assert_eq!(f3.num_hosts(), 512);
        assert_eq!(f3.num_switches(), 64);
        assert_eq!(f3.ports_per_switch(), 22);
    }

    #[test]
    fn grouped_scale_targets_have_documented_boms() {
        // The reduced hybrid validation point: 15-ary 3-flat with c=8.
        let f = FlattenedButterfly::grouped(15, 8, 3).unwrap();
        assert_eq!(f.num_hosts(), 960);
        assert_eq!(f.num_switches(), 64);
        assert_eq!(f.ports_per_switch(), 29);
        assert_eq!(f.link_count(Medium::Electrical), 960 + 64 * 7 / 2);
        assert_eq!(f.link_count(Medium::Optical), 64 * 7 / 2);
        assert_eq!(
            f.total_links(),
            f.link_count(Medium::Electrical) + f.link_count(Medium::Optical)
        );

        // The 10^5-host hybrid sweep point.
        let big = FlattenedButterfly::grouped(32, 16, 4).unwrap();
        assert_eq!(big.num_hosts(), 131_072);
        assert_eq!(big.num_switches(), 4_096);
        assert_eq!(big.ports_per_switch(), 77);
        assert_eq!(big.oversubscription(), 2.0);

        // The 10^6-host hybrid sweep point: a true million-host flat.
        let million = FlattenedButterfly::grouped(32, 32, 4).unwrap();
        assert_eq!(million.num_hosts(), 1 << 20);
        assert_eq!(million.num_switches(), 32_768);
        assert_eq!(million.ports_per_switch(), 32 + 3 * 31);
        assert_eq!(million.oversubscription(), 1.0);

        // grouped() is new() under a design-space name.
        assert_eq!(
            FlattenedButterfly::grouped(15, 15, 3).unwrap(),
            FlattenedButterfly::paper_evaluation()
        );
        assert!(matches!(
            FlattenedButterfly::grouped(0, 8, 3),
            Err(TopologyError::ZeroConcentration)
        ));
    }

    #[test]
    fn port_round_trips() {
        let f = FlattenedButterfly::new(4, 4, 3).unwrap();
        for s in 0..f.num_switches() {
            let s = SwitchId::new(s as u32);
            for dim in 0..f.switch_dims() {
                let own = f.switch_coord(s).digit(dim);
                for digit in 0..f.radix() {
                    if digit == own {
                        continue;
                    }
                    let port = f.port_toward(s, dim, digit);
                    assert_eq!(f.port_peer_digit(s, port), Some((dim, digit)));
                    let (peer, back) = f.port_peer(s, port).unwrap();
                    // Links are symmetric.
                    let (peer2, back2) = f.port_peer(peer, back).unwrap();
                    assert_eq!(peer2, s);
                    assert_eq!(back2, port);
                }
            }
        }
    }

    #[test]
    fn host_ports_have_no_peer_switch() {
        let f = FlattenedButterfly::new(4, 4, 2).unwrap();
        assert_eq!(f.port_peer(SwitchId::new(0), PortIndex::new(0)), None);
        assert_eq!(
            f.port_host(SwitchId::new(1), PortIndex::new(2)),
            Some(HostId::new(6))
        );
        assert_eq!(f.port_host(SwitchId::new(1), PortIndex::new(4)), None);
    }

    #[test]
    fn host_switch_assignment_is_blocked() {
        let f = FlattenedButterfly::new(3, 4, 2).unwrap();
        assert_eq!(f.host_switch(HostId::new(0)).index(), 0);
        assert_eq!(f.host_switch(HostId::new(2)).index(), 0);
        assert_eq!(f.host_switch(HostId::new(3)).index(), 1);
        assert_eq!(f.host_port(HostId::new(4)).index(), 1);
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(matches!(
            FlattenedButterfly::new(0, 8, 3),
            Err(TopologyError::ZeroConcentration)
        ));
        assert!(matches!(
            FlattenedButterfly::new(8, 1, 3),
            Err(TopologyError::RadixTooSmall { k: 1 })
        ));
        assert!(matches!(
            FlattenedButterfly::new(8, 8, 1),
            Err(TopologyError::TooFewDimensions { n: 1 })
        ));
        assert!(matches!(
            FlattenedButterfly::new(8, 8, 12),
            Err(TopologyError::TooManyDimensions { .. })
        ));
        assert!(matches!(
            FlattenedButterfly::new(1000, 1000, 5),
            Err(TopologyError::TooLarge { .. })
        ));
    }

    #[test]
    fn hop_distance_bounded_by_dims() {
        let f = FlattenedButterfly::new(2, 3, 4).unwrap();
        for a in 0..f.num_switches() {
            for b in 0..f.num_switches() {
                let d = f.hop_distance(SwitchId::new(a as u32), SwitchId::new(b as u32));
                assert!(d <= f.switch_dims());
                if a == b {
                    assert_eq!(d, 0);
                }
            }
        }
    }

    #[test]
    fn bisection_with_odd_radix() {
        // 15-ary: cut splits 7 vs 8 digits -> 7·8 crossing links per group.
        let f = FlattenedButterfly::paper_evaluation();
        let groups = 225 / 15;
        let expect = 2.0 * (groups * 7 * 8) as f64 * 40.0;
        assert_eq!(f.bisection_gbps(40.0), expect);
    }

    #[test]
    fn total_links_is_consistent() {
        let f = FlattenedButterfly::paper_comparison_32k();
        assert_eq!(
            f.total_links(),
            f.link_count(Medium::Electrical) + f.link_count(Medium::Optical)
        );
        // Every port is used exactly once: 2·links = ports·switches + hosts.
        assert_eq!(
            2 * f.inter_switch_links() + 2 * f.num_hosts(),
            f.num_switches() * f.ports_per_switch() as usize + f.num_hosts()
        );
    }
}
