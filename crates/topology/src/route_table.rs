//! Precomputed forwarding tables: the per-hop fast path.
//!
//! Adaptive routing needs, at every hop, the set of *minimal candidate
//! ports* toward the destination and (under UGAL) the set of legal
//! *detour ports*. Both depend only on `(current switch, destination
//! switch, link mask)` — never on the individual packet — so they can be
//! computed once per fabric and indexed per hop instead of re-derived
//! from switch coordinates on the critical path.
//!
//! [`RouteTable`] stores both sets as CSR-style flat arrays: one `u32`
//! offset row per `(switch, destination switch)` pair and one shared
//! `PortIndex` pool, giving allocation-free `&[PortIndex]` lookups. The
//! table records the [`LinkMask::generation`] it was built against;
//! when the mask mutates (dynamic topologies flip links at epoch
//! boundaries) the stamp goes stale and the owner rebuilds lazily on the
//! next lookup — a handful of rebuilds per run instead of a per-packet
//! mask probe.

use crate::fabric::RoutingTopology;
use crate::{FabricGraph, HostId, LinkMask, PortIndex, SwitchId};

/// Flat, destination-switch-indexed candidate-port sets for a
/// [`FabricGraph`], valid for one [`LinkMask`] generation.
///
/// Rows are indexed `at * num_switches + dst_switch`. The row for
/// `at == dst_switch` is empty: local delivery picks the destination
/// host's ejection port, which depends on the host rather than the
/// switch, and stays on the caller's slow (trivial) path.
///
/// ```
/// use epnet_topology::{FlattenedButterfly, HostId, RouteTable, RoutingTopology, SwitchId};
/// let g = FlattenedButterfly::new(2, 4, 2)?.build_fabric();
/// let table = RouteTable::build(&g, None);
/// let dest = HostId::new(7);
/// let mut dynamic = Vec::new();
/// g.candidate_ports_masked(SwitchId::new(0), dest, None, &mut dynamic);
/// assert_eq!(
///     table.candidates(SwitchId::new(0), g.host_switch(dest)),
///     &dynamic[..],
/// );
/// # Ok::<(), epnet_topology::TopologyError>(())
/// ```
#[derive(Debug, Clone)]
pub struct RouteTable {
    num_switches: usize,
    generation: u64,
    min_offsets: Vec<u32>,
    min_ports: Vec<PortIndex>,
    detour_offsets: Vec<u32>,
    detour_ports: Vec<PortIndex>,
}

impl RouteTable {
    /// Builds the table for `fabric` under `mask` by delegating to
    /// [`FabricGraph::candidate_ports_masked`] and
    /// [`FabricGraph::detour_ports_masked`] for every
    /// `(switch, destination switch)` pair — the table is *defined* as
    /// their memoization, so lookup order matches the on-the-fly path
    /// exactly.
    pub fn build(fabric: &FabricGraph, mask: Option<&LinkMask>) -> Self {
        let s = fabric.num_switches();
        let conc = u32::from(fabric.concentration());
        let mut min_offsets = Vec::with_capacity(s * s + 1);
        let mut detour_offsets = Vec::with_capacity(s * s + 1);
        let mut min_ports = Vec::new();
        let mut detour_ports = Vec::new();
        let mut row = Vec::new();
        min_offsets.push(0);
        detour_offsets.push(0);
        for at in 0..s {
            let at = SwitchId::new(at as u32);
            for dst in 0..s {
                let dst = SwitchId::new(dst as u32);
                if at != dst {
                    // Any host of `dst` works: for a remote destination
                    // the candidate set depends only on its switch.
                    let probe = HostId::new(dst.raw() * conc);
                    fabric.candidate_ports_masked(at, probe, mask, &mut row);
                    min_ports.extend_from_slice(&row);
                    fabric.detour_ports_masked(at, dst, mask, &mut row);
                    detour_ports.extend_from_slice(&row);
                }
                min_offsets.push(min_ports.len() as u32);
                detour_offsets.push(detour_ports.len() as u32);
            }
        }
        Self {
            num_switches: s,
            generation: mask.map_or(0, LinkMask::generation),
            min_offsets,
            min_ports,
            detour_offsets,
            detour_ports,
        }
    }

    /// The [`LinkMask::generation`] this table was built against
    /// (0 when built without a mask).
    #[inline]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Whether the table still matches `mask` (an unmasked fabric never
    /// goes stale).
    #[inline]
    pub fn is_current(&self, mask: Option<&LinkMask>) -> bool {
        mask.map_or(true, |m| m.generation() == self.generation)
    }

    /// Minimal candidate ports from `at` toward any host of
    /// `dst_switch`, in [`FabricGraph::candidate_ports_masked`] order.
    /// Empty for `at == dst_switch` (local delivery) and for switches
    /// stranded by the mask.
    #[inline]
    pub fn candidates(&self, at: SwitchId, dst_switch: SwitchId) -> &[PortIndex] {
        let row = at.index() * self.num_switches + dst_switch.index();
        &self.min_ports[self.min_offsets[row] as usize..self.min_offsets[row + 1] as usize]
    }

    /// UGAL detour ports from `at` toward `dst_switch`, in
    /// [`FabricGraph::detour_ports_masked`] order.
    #[inline]
    pub fn detours(&self, at: SwitchId, dst_switch: SwitchId) -> &[PortIndex] {
        let row = at.index() * self.num_switches + dst_switch.index();
        &self.detour_ports[self.detour_offsets[row] as usize..self.detour_offsets[row + 1] as usize]
    }

    /// Number of switches the table covers.
    #[inline]
    pub fn num_switches(&self) -> usize {
        self.num_switches
    }

    /// Total stored port entries (minimal candidates plus detours) — a
    /// size gauge for the table's memory footprint, reported in the
    /// route-table rebuild trace events.
    #[inline]
    pub fn num_port_entries(&self) -> usize {
        self.min_ports.len() + self.detour_ports.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FlattenedButterfly, LinkId, SubtopologyKind, TwoTierClos};

    fn assert_matches_dynamic(fabric: &FabricGraph, mask: Option<&LinkMask>) {
        let table = RouteTable::build(fabric, mask);
        let mut dynamic = Vec::new();
        for at in 0..fabric.num_switches() {
            let at = SwitchId::new(at as u32);
            for h in 0..fabric.num_hosts() {
                let dest = HostId::new(h as u32);
                let dst_switch = fabric.host_switch(dest);
                if at == dst_switch {
                    continue;
                }
                fabric.candidate_ports_masked(at, dest, mask, &mut dynamic);
                assert_eq!(table.candidates(at, dst_switch), &dynamic[..]);
                fabric.detour_ports_masked(at, dst_switch, mask, &mut dynamic);
                assert_eq!(table.detours(at, dst_switch), &dynamic[..]);
            }
        }
    }

    #[test]
    fn butterfly_table_matches_dynamic_routing() {
        let g = FlattenedButterfly::new(2, 4, 3).unwrap().build_fabric();
        assert_matches_dynamic(&g, None);
        let mesh = LinkMask::subtopology(&g, SubtopologyKind::Mesh);
        assert_matches_dynamic(&g, Some(&mesh));
        let torus = LinkMask::subtopology(&g, SubtopologyKind::Torus);
        assert_matches_dynamic(&g, Some(&torus));
    }

    #[test]
    fn clos_table_matches_dynamic_routing() {
        let g = TwoTierClos::new(4, 2, 6).unwrap().build_fabric();
        assert_matches_dynamic(&g, None);
    }

    #[test]
    fn local_rows_are_empty() {
        let g = FlattenedButterfly::new(2, 4, 2).unwrap().build_fabric();
        let table = RouteTable::build(&g, None);
        for s in 0..g.num_switches() {
            let s = SwitchId::new(s as u32);
            assert!(table.candidates(s, s).is_empty());
            assert!(table.detours(s, s).is_empty());
        }
    }

    #[test]
    fn port_entry_count_sums_both_kinds() {
        let g = FlattenedButterfly::new(2, 4, 2).unwrap().build_fabric();
        let table = RouteTable::build(&g, None);
        let mut expected = 0;
        for a in 0..g.num_switches() {
            let a = SwitchId::new(a as u32);
            for b in 0..g.num_switches() {
                let b = SwitchId::new(b as u32);
                expected += table.candidates(a, b).len() + table.detours(a, b).len();
            }
        }
        assert!(expected > 0);
        assert_eq!(table.num_port_entries(), expected);
    }

    #[test]
    fn staleness_follows_mask_generation() {
        let g = FlattenedButterfly::new(2, 4, 2).unwrap().build_fabric();
        let mut mask = LinkMask::all_enabled(&g);
        let table = RouteTable::build(&g, Some(&mask));
        assert!(table.is_current(Some(&mask)));
        assert!(table.is_current(None), "maskless lookups never go stale");
        let link = LinkId::new(g.num_links() as u32 - 1);
        mask.disable(link);
        assert!(!table.is_current(Some(&mask)));
        let rebuilt = RouteTable::build(&g, Some(&mask));
        assert!(rebuilt.is_current(Some(&mask)));
        assert_matches_dynamic(&g, Some(&mask));
    }
}
