//! Error types for topology construction.

use std::error::Error;
use std::fmt;

/// Errors arising when constructing or validating a topology.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TopologyError {
    /// The switch radix `k` must be at least 2 so each dimension is a
    /// non-trivial fully-connected group.
    RadixTooSmall {
        /// The offending radix.
        k: u16,
    },
    /// A *k*-ary *n*-flat needs `n ≥ 2` (one host dimension plus at least
    /// one switch dimension).
    TooFewDimensions {
        /// The offending `n`.
        n: usize,
    },
    /// More dimensions were requested than the implementation supports.
    TooManyDimensions {
        /// Requested dimensions.
        dims: usize,
        /// Supported maximum.
        max: usize,
    },
    /// The concentration `c` must be at least 1 (at least one host per
    /// switch).
    ZeroConcentration,
    /// The topology would exceed the addressable size (`u32` entity ids).
    TooLarge {
        /// Human-readable description of the quantity that overflowed.
        what: &'static str,
    },
    /// A chassis cannot be assembled from the given chip radix and port
    /// count (ports must be divisible by `radix / 2` with an even radix).
    InvalidChassis {
        /// Chip radix.
        chip_radix: u16,
        /// Requested external chassis ports.
        chassis_ports: u32,
    },
    /// The folded-Clos model requires at least one host.
    NoHosts,
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::RadixTooSmall { k } => write!(f, "switch radix k={k} is below the minimum of 2"),
            Self::TooFewDimensions { n } => {
                write!(f, "a k-ary n-flat requires n >= 2, got n={n}")
            }
            Self::TooManyDimensions { dims, max } => {
                write!(
                    f,
                    "{dims} dimensions requested but at most {max} are supported"
                )
            }
            Self::ZeroConcentration => write!(f, "concentration c must be at least 1"),
            Self::TooLarge { what } => write!(f, "topology too large: {what} exceeds u32 range"),
            Self::InvalidChassis {
                chip_radix,
                chassis_ports,
            } => write!(
                f,
                "cannot build a {chassis_ports}-port chassis from radix-{chip_radix} chips"
            ),
            Self::NoHosts => write!(f, "at least one host is required"),
        }
    }
}

impl Error for TopologyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errs = [
            TopologyError::RadixTooSmall { k: 1 },
            TopologyError::TooFewDimensions { n: 1 },
            TopologyError::TooManyDimensions { dims: 10, max: 8 },
            TopologyError::ZeroConcentration,
            TopologyError::TooLarge { what: "hosts" },
            TopologyError::InvalidChassis {
                chip_radix: 36,
                chassis_ports: 100,
            },
            TopologyError::NoHosts,
        ];
        for e in errs {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            let first = msg.chars().next().unwrap();
            assert!(!first.is_uppercase(), "message starts uppercase: {msg}");
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TopologyError>();
    }
}
