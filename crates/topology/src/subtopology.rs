//! Link masks for the *dynamic topologies* extension (§5.2).
//!
//! "From a flattened butterfly, we can selectively disable links, thereby
//! changing the topology to a more conventional mesh or torus."

use crate::{FabricGraph, LinkId, PortTarget, RoutingTopology, SwitchId};
use serde::{Deserialize, Serialize};

/// A named subtopology obtained by disabling flattened-butterfly links.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SubtopologyKind {
    /// All links enabled: the full flattened butterfly.
    FlattenedButterfly,
    /// Only adjacent-digit links in each dimension: a multidimensional
    /// mesh (lowest power, lowest bisection).
    Mesh,
    /// Adjacent-digit links plus the wraparound link in each dimension:
    /// a torus ("as the offered demand increases, we can enable additional
    /// wrap-around links to create a torus with greater bisection
    /// bandwidth than the mesh", §5.2).
    Torus,
}

/// A per-link enable mask over a [`FabricGraph`].
///
/// Host links are always enabled — only inter-switch links participate in
/// dynamic topology changes.
///
/// ```
/// use epnet_topology::{FlattenedButterfly, LinkMask, SubtopologyKind};
/// let g = FlattenedButterfly::new(2, 4, 3)?.build_fabric();
/// let mesh = LinkMask::subtopology(&g, SubtopologyKind::Mesh);
/// let torus = LinkMask::subtopology(&g, SubtopologyKind::Torus);
/// assert!(mesh.enabled_links() < torus.enabled_links());
/// assert_eq!(
///     LinkMask::subtopology(&g, SubtopologyKind::FlattenedButterfly).enabled_links(),
///     g.num_links(),
/// );
/// # Ok::<(), epnet_topology::TopologyError>(())
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LinkMask {
    enabled: Vec<bool>,
    /// Change stamp: bumped on every [`enable`](Self::enable) /
    /// [`disable`](Self::disable) so derived structures (e.g. a
    /// [`RouteTable`](crate::RouteTable)) can detect staleness without
    /// comparing the whole bit-vector. Not part of equality.
    generation: u64,
}

/// Equality compares the enabled bits only — two masks describing the
/// same subtopology are equal regardless of their edit histories.
impl PartialEq for LinkMask {
    fn eq(&self, other: &Self) -> bool {
        self.enabled == other.enabled
    }
}

impl Eq for LinkMask {}

impl LinkMask {
    /// A mask with every link enabled.
    pub fn all_enabled(graph: &FabricGraph) -> Self {
        Self {
            enabled: vec![true; graph.num_links()],
            generation: 0,
        }
    }

    /// Builds the mask realising a [`SubtopologyKind`] over `graph`.
    ///
    /// In `Mesh` mode a dimension link between digits `a` and `b` is kept
    /// when `|a − b| = 1`; `Torus` additionally keeps the `0 ↔ k−1`
    /// wraparound.
    ///
    /// # Panics
    ///
    /// Panics for non-butterfly fabrics (a Clos has no dimension rings
    /// to thin out) unless the requested kind keeps every link.
    pub fn subtopology(graph: &FabricGraph, kind: SubtopologyKind) -> Self {
        let mut mask = Self::all_enabled(graph);
        if kind == SubtopologyKind::FlattenedButterfly {
            return mask;
        }
        assert_eq!(
            graph.kind(),
            crate::FabricKind::FlattenedButterfly,
            "mesh/torus subtopologies are defined over flattened butterflies"
        );
        let k = graph.radix();
        for s in 0..graph.num_switches() {
            let sid = SwitchId::new(s as u32);
            let coord = graph.switch_coord(sid);
            for p in graph.concentration() as usize..graph.ports_per_switch() {
                let pid = crate::PortIndex::new(p as u16);
                let PortTarget::Switch { switch: peer, .. } = graph.port_target(sid, pid) else {
                    continue;
                };
                let peer_coord = graph.switch_coord(peer);
                // Exactly one dimension differs for a direct link.
                let dim = (0..graph.switch_dims())
                    .find(|&d| coord.digit(d) != peer_coord.digit(d))
                    .expect("inter-switch link differs in one dimension");
                let a = coord.digit(dim);
                let b = peer_coord.digit(dim);
                let adjacent = a.abs_diff(b) == 1;
                let wrap = a.abs_diff(b) == k - 1;
                let keep = match kind {
                    SubtopologyKind::FlattenedButterfly => true,
                    SubtopologyKind::Mesh => adjacent,
                    SubtopologyKind::Torus => adjacent || wrap,
                };
                if !keep {
                    let link = graph.link_of(graph.output_channel(sid, pid));
                    mask.disable(link);
                }
            }
        }
        mask
    }

    /// Whether a link is enabled.
    #[inline]
    pub fn is_enabled(&self, link: LinkId) -> bool {
        self.enabled[link.index()]
    }

    /// Enables a link, bumping the change [`generation`](Self::generation).
    pub fn enable(&mut self, link: LinkId) {
        self.enabled[link.index()] = true;
        self.generation += 1;
    }

    /// Disables a link, bumping the change [`generation`](Self::generation).
    pub fn disable(&mut self, link: LinkId) {
        self.enabled[link.index()] = false;
        self.generation += 1;
    }

    /// The change stamp — strictly increases across every mutation.
    ///
    /// Consumers that precompute over a mask (route tables) record the
    /// generation at build time and rebuild lazily when it moves.
    #[inline]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Number of enabled links.
    pub fn enabled_links(&self) -> usize {
        self.enabled.iter().filter(|&&e| e).count()
    }

    /// Total links covered by the mask.
    pub fn len(&self) -> usize {
        self.enabled.len()
    }

    /// Whether the mask covers zero links (only for a degenerate graph).
    pub fn is_empty(&self) -> bool {
        self.enabled.is_empty()
    }

    /// Iterates over the enabled state of every link.
    pub fn iter(&self) -> impl Iterator<Item = (LinkId, bool)> + '_ {
        self.enabled
            .iter()
            .enumerate()
            .map(|(i, &e)| (LinkId::new(i as u32), e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FlattenedButterfly, HostId};

    fn graph() -> FabricGraph {
        FlattenedButterfly::new(2, 5, 3).unwrap().build_fabric()
    }

    #[test]
    fn mesh_keeps_adjacent_links_only() {
        let g = graph();
        let f = FlattenedButterfly::new(2, 5, 3).unwrap();
        let mesh = LinkMask::subtopology(&g, SubtopologyKind::Mesh);
        // Per dimension, a k-node line has k−1 links per group;
        // fully-connected has k(k−1)/2. Host links always stay.
        let k = 5usize;
        let groups = g.num_switches() / k * g.switch_dims();
        let expect = g.num_hosts() + groups * (k - 1);
        assert_eq!(mesh.enabled_links(), expect);
        assert!(mesh.enabled_links() < f.total_links());
    }

    #[test]
    fn torus_adds_one_wraparound_per_ring() {
        let g = graph();
        let mesh = LinkMask::subtopology(&g, SubtopologyKind::Mesh);
        let torus = LinkMask::subtopology(&g, SubtopologyKind::Torus);
        let k = 5usize;
        let rings = g.num_switches() / k * g.switch_dims();
        assert_eq!(torus.enabled_links(), mesh.enabled_links() + rings);
    }

    #[test]
    fn host_links_always_enabled() {
        let g = graph();
        let mesh = LinkMask::subtopology(&g, SubtopologyKind::Mesh);
        for h in 0..g.num_hosts() {
            let inj = g.injection_channel(HostId::new(h as u32));
            assert!(mesh.is_enabled(g.link_of(inj)));
        }
    }

    #[test]
    fn masked_routing_still_reaches_every_destination() {
        // Walk greedily from every switch to a fixed destination under the
        // mesh mask; must terminate at the destination switch.
        let g = graph();
        let mesh = LinkMask::subtopology(&g, SubtopologyKind::Mesh);
        let dest = HostId::new(37 % g.num_hosts() as u32);
        let dest_switch = g.host_switch(dest);
        let mut out = Vec::new();
        for s in 0..g.num_switches() {
            let mut at = SwitchId::new(s as u32);
            let mut steps = 0;
            while at != dest_switch {
                g.candidate_ports_masked(at, dest, Some(&mesh), &mut out);
                assert!(!out.is_empty(), "mesh mask stranded switch {at}");
                let PortTarget::Switch { switch, .. } = g.port_target(at, out[0]) else {
                    panic!("expected switch hop");
                };
                at = switch;
                steps += 1;
                assert!(
                    steps <= g.switch_dims() * g.radix() as usize,
                    "routing loop"
                );
            }
        }
    }

    #[test]
    fn torus_wrap_is_used_when_shorter() {
        // From digit 0 to digit k−1 under torus mask, the single wrap step
        // should be chosen over k−2 line steps.
        let g = graph();
        let torus = LinkMask::subtopology(&g, SubtopologyKind::Torus);
        // Switch (0,0) to a host on switch (4,0): differs in dim 0,
        // digits 0 -> 4 with k = 5, wrap distance 1.
        let dest = HostId::new(4 * g.concentration() as u32); // switch 4 = (4,0)
        let mut out = Vec::new();
        g.candidate_ports_masked(SwitchId::new(0), dest, Some(&torus), &mut out);
        assert_eq!(out.len(), 1);
        let PortTarget::Switch { switch, .. } = g.port_target(SwitchId::new(0), out[0]) else {
            panic!("expected switch hop");
        };
        assert_eq!(switch, SwitchId::new(4), "wraparound step taken");
    }

    #[test]
    fn enable_disable_round_trip() {
        let g = graph();
        let mut m = LinkMask::all_enabled(&g);
        let l = LinkId::new(3);
        assert!(m.is_enabled(l));
        m.disable(l);
        assert!(!m.is_enabled(l));
        assert_eq!(m.enabled_links(), g.num_links() - 1);
        m.enable(l);
        assert_eq!(m.enabled_links(), g.num_links());
        assert_eq!(m.iter().count(), g.num_links());
        assert!(!m.is_empty());
    }

    #[test]
    fn generation_tracks_mutations_but_not_equality() {
        let g = graph();
        let mut m = LinkMask::all_enabled(&g);
        assert_eq!(m.generation(), 0);
        m.disable(LinkId::new(3));
        m.enable(LinkId::new(3));
        assert_eq!(m.generation(), 2);
        // Content-equal to a fresh mask despite the edit history.
        assert_eq!(m, LinkMask::all_enabled(&g));
    }
}
