//! Port-level fabric graph consumed by the event-driven simulator.

use crate::{ChannelId, Coord, FlattenedButterfly, HostId, LinkId, LinkMask, PortIndex, SwitchId};
use serde::{Deserialize, Serialize};

/// Physical medium of a link, which determines its cabling cost and (for
/// real switch chips) a second-order power difference (Figure 5 shows an
/// electrical port using about 25% less power than an optical one).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Medium {
    /// Short (<5 m) passive copper cable or backplane trace.
    Electrical,
    /// Optical transceiver pair, required for longer runs.
    Optical,
}

/// What an output port connects to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PortTarget {
    /// The port is a host (ejection) port.
    Host(HostId),
    /// The port connects to `port` on `switch`.
    Switch {
        /// Peer switch.
        switch: SwitchId,
        /// Input port on the peer switch that receives from this port.
        port: PortIndex,
    },
}

/// Minimal interface the simulator needs from a topology: sizes, host
/// attachment, the port-level connectivity, and local minimal-adaptive
/// route candidates.
///
/// The flattened butterfly satisfies the paper's key property that "the
/// choice of a packet's route is inherently a local decision" (§3.2):
/// [`RoutingTopology::candidate_ports`] depends only on the current switch
/// and the destination.
pub trait RoutingTopology {
    /// Number of hosts.
    fn num_hosts(&self) -> usize;
    /// Number of switches.
    fn num_switches(&self) -> usize;
    /// Ports per switch.
    fn ports_per_switch(&self) -> usize;
    /// The switch a host attaches to.
    fn host_switch(&self, host: HostId) -> SwitchId;
    /// The port on [`Self::host_switch`] the host occupies.
    fn host_port(&self, host: HostId) -> PortIndex;
    /// What output port `(switch, port)` connects to.
    fn port_target(&self, switch: SwitchId, port: PortIndex) -> PortTarget;
    /// Pushes the minimal route candidates from `at` toward `dest` into
    /// `out` (cleared first). With every link available there is one
    /// candidate per unresolved dimension; the adaptive router picks among
    /// them by output-queue depth (§4.1).
    fn candidate_ports(&self, at: SwitchId, dest: HostId, out: &mut Vec<PortIndex>);
}

/// Which topology a [`FabricGraph`] elaborates, selecting the routing
/// function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FabricKind {
    /// A flattened butterfly: minimal-adaptive routing over the
    /// unresolved dimensions; supports link masks and detours.
    FlattenedButterfly,
    /// A two-tier folded Clos (leaf/spine): up over any spine, then down
    /// — "a folded-Clos has multiple physical paths to each destination
    /// and very simple routing" (§2.1).
    TwoTierClos {
        /// Leaf switch count (switch ids `0..leaves`).
        leaves: u32,
        /// Spine switch count (switch ids `leaves..leaves+spines`).
        spines: u32,
    },
}

/// A fully-elaborated port-level graph of a fabric (flattened butterfly
/// or two-tier folded Clos): dense channel and link identifiers, media,
/// and routing support — everything `epnet-sim` needs.
///
/// # Channel numbering
///
/// * Channels `0..H` are host *injection* channels (host → switch).
/// * Channel `H + s·P + p` is the output channel of port `p` on switch `s`
///   (an *ejection* channel when `p` is a host port).
///
/// Every channel belongs to exactly one bidirectional [`LinkId`] pair.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FabricGraph {
    kind: FabricKind,
    radix: u16,
    switch_dims: usize,
    concentration: u16,
    num_hosts: u32,
    num_switches: u32,
    ports_per_switch: u16,
    /// Switch-major port targets: index `s * P + p`.
    port_targets: Vec<PortTarget>,
    /// Per-switch coordinates.
    coords: Vec<Coord>,
    /// Per-channel medium.
    media: Vec<Medium>,
    /// Per-channel owning link.
    channel_link: Vec<LinkId>,
    /// Per-link channel pair (lower channel id first).
    links: Vec<(ChannelId, ChannelId)>,
}

impl FabricGraph {
    /// Builds the fabric graph for a flattened butterfly.
    pub fn from_fbfly(f: &FlattenedButterfly) -> Self {
        let s_count = f.num_switches();
        let h_count = f.num_hosts();
        let ports = f.ports_per_switch() as usize;
        let conc = f.concentration() as usize;

        let mut port_targets = Vec::with_capacity(s_count * ports);
        let mut coords = Vec::with_capacity(s_count);
        for s in 0..s_count {
            let sid = SwitchId::new(s as u32);
            coords.push(f.switch_coord(sid));
            for p in 0..ports {
                let pid = PortIndex::new(p as u16);
                if p < conc {
                    let host = f
                        .port_host(sid, pid)
                        .expect("ports below concentration are host ports");
                    port_targets.push(PortTarget::Host(host));
                } else {
                    let (peer, back) = f
                        .port_peer(sid, pid)
                        .expect("ports at or above concentration are switch ports");
                    port_targets.push(PortTarget::Switch {
                        switch: peer,
                        port: back,
                    });
                }
            }
        }

        let num_channels = h_count + s_count * ports;
        let mut media = Vec::with_capacity(num_channels);
        // Injection channels: electrical (host to its local switch).
        media.resize(h_count, Medium::Electrical);
        for _switch in 0..s_count {
            for p in 0..ports {
                let medium = if p < conc {
                    Medium::Electrical
                } else {
                    // Dimension 0 enjoys packaging locality; higher
                    // dimensions need optics (§2.2).
                    let dim = (p - conc) / (f.radix() as usize - 1);
                    if dim == 0 {
                        Medium::Electrical
                    } else {
                        Medium::Optical
                    }
                };
                media.push(medium);
            }
        }

        // Pair channels into bidirectional links.
        let mut channel_link = vec![LinkId::new(u32::MAX); num_channels];
        let mut links = Vec::with_capacity(num_channels / 2);
        let this_partial = |s: usize, p: usize| h_count + s * ports + p;
        for h in 0..h_count {
            // Injection channel h pairs with the ejection channel of its
            // switch port.
            let hid = HostId::new(h as u32);
            let sw = f.host_switch(hid);
            let port = f.host_port(hid);
            let eject = this_partial(sw.index(), port.index());
            let link = LinkId::new(links.len() as u32);
            channel_link[h] = link;
            channel_link[eject] = link;
            links.push((ChannelId::new(h as u32), ChannelId::new(eject as u32)));
        }
        for s in 0..s_count {
            for p in conc..ports {
                let ch = this_partial(s, p);
                let PortTarget::Switch { switch, port } = port_targets[s * ports + p] else {
                    unreachable!("inter-switch port range");
                };
                let rev = this_partial(switch.index(), port.index());
                if ch < rev {
                    let link = LinkId::new(links.len() as u32);
                    channel_link[ch] = link;
                    channel_link[rev] = link;
                    links.push((ChannelId::new(ch as u32), ChannelId::new(rev as u32)));
                }
            }
        }
        debug_assert!(channel_link.iter().all(|l| l.raw() != u32::MAX));

        Self {
            kind: FabricKind::FlattenedButterfly,
            radix: f.radix(),
            switch_dims: f.switch_dims(),
            concentration: f.concentration(),
            num_hosts: h_count as u32,
            num_switches: s_count as u32,
            ports_per_switch: ports as u16,
            port_targets,
            coords,
            media,
            channel_link,
            links,
        }
    }

    /// Builds the fabric graph for a uniform two-tier folded Clos:
    /// `leaves` leaf switches with `concentration` hosts each, every
    /// leaf connected to every one of `spines` spine switches.
    ///
    /// To keep channel indexing dense, every switch has the same port
    /// count, which requires `leaves == concentration + spines` (e.g.
    /// the non-blocking `leaves = 2c, spines = c`). Construct via
    /// [`TwoTierClos`](crate::TwoTierClos), which validates this.
    ///
    /// Host links are electrical (rack-local); leaf↔spine links are
    /// optical, matching the paper's packaging assumptions for
    /// centralized Clos fabrics (§2.2).
    pub(crate) fn from_two_tier_clos(leaves: u32, spines: u32, concentration: u16) -> Self {
        assert_eq!(
            leaves as u64,
            u64::from(concentration) + spines as u64,
            "uniform chip radix requires leaves == concentration + spines"
        );
        let s_count = (leaves + spines) as usize;
        let h_count = leaves as usize * concentration as usize;
        let ports = leaves as usize; // == concentration + spines
        let conc = concentration as usize;

        let mut port_targets = Vec::with_capacity(s_count * ports);
        for leaf in 0..leaves {
            for p in 0..ports {
                if p < conc {
                    port_targets.push(PortTarget::Host(HostId::new(
                        leaf * u32::from(concentration) + p as u32,
                    )));
                } else {
                    let spine = (p - conc) as u32;
                    port_targets.push(PortTarget::Switch {
                        switch: SwitchId::new(leaves + spine),
                        port: PortIndex::new(leaf as u16),
                    });
                }
            }
        }
        for spine in 0..spines {
            for p in 0..ports {
                let _ = spine;
                port_targets.push(PortTarget::Switch {
                    switch: SwitchId::new(p as u32),
                    port: PortIndex::new(concentration + spine as u16),
                });
            }
        }

        let num_channels = h_count + s_count * ports;
        let mut media = Vec::with_capacity(num_channels);
        media.resize(h_count, Medium::Electrical); // injection
        for s in 0..s_count {
            for p in 0..ports {
                let is_leaf_host_port = s < leaves as usize && p < conc;
                media.push(if is_leaf_host_port {
                    Medium::Electrical
                } else {
                    Medium::Optical
                });
            }
        }

        let mut channel_link = vec![LinkId::new(u32::MAX); num_channels];
        let mut links = Vec::with_capacity(num_channels / 2);
        let out_ch = |s: usize, p: usize| h_count + s * ports + p;
        for h in 0..h_count {
            let leaf = h / conc;
            let port = h % conc;
            let eject = out_ch(leaf, port);
            let link = LinkId::new(links.len() as u32);
            channel_link[h] = link;
            channel_link[eject] = link;
            links.push((ChannelId::new(h as u32), ChannelId::new(eject as u32)));
        }
        for leaf in 0..leaves as usize {
            for p in conc..ports {
                let up = out_ch(leaf, p);
                let spine = leaves as usize + (p - conc);
                let down = out_ch(spine, leaf);
                let link = LinkId::new(links.len() as u32);
                channel_link[up] = link;
                channel_link[down] = link;
                links.push((ChannelId::new(up as u32), ChannelId::new(down as u32)));
            }
        }
        debug_assert!(channel_link.iter().all(|l| l.raw() != u32::MAX));

        Self {
            kind: FabricKind::TwoTierClos { leaves, spines },
            radix: 0,
            switch_dims: 0,
            concentration,
            num_hosts: h_count as u32,
            num_switches: s_count as u32,
            ports_per_switch: ports as u16,
            port_targets,
            coords: vec![Coord::new(&[]).expect("empty coord is valid"); s_count],
            media,
            channel_link,
            links,
        }
    }

    /// The topology this graph elaborates.
    #[inline]
    pub fn kind(&self) -> FabricKind {
        self.kind
    }

    /// Dimension radix `k` of the underlying flattened butterfly
    /// (0 for a Clos fabric).
    #[inline]
    pub fn radix(&self) -> u16 {
        self.radix
    }

    /// Number of switch dimensions (`n − 1`).
    #[inline]
    pub fn switch_dims(&self) -> usize {
        self.switch_dims
    }

    /// Hosts per switch.
    #[inline]
    pub fn concentration(&self) -> u16 {
        self.concentration
    }

    /// Total number of unidirectional channels.
    #[inline]
    pub fn num_channels(&self) -> usize {
        self.media.len()
    }

    /// Total number of bidirectional links.
    #[inline]
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// The injection channel of a host.
    #[inline]
    pub fn injection_channel(&self, host: HostId) -> ChannelId {
        ChannelId::new(host.raw())
    }

    /// The output channel of `(switch, port)`.
    #[inline]
    pub fn output_channel(&self, switch: SwitchId, port: PortIndex) -> ChannelId {
        ChannelId::new(
            self.num_hosts
                + switch.raw() * u32::from(self.ports_per_switch)
                + u32::from(port.raw()),
        )
    }

    /// Decodes a channel back into its source: `None` for a host injection
    /// channel, `Some((switch, port))` for a switch output channel.
    #[inline]
    pub fn channel_source(&self, channel: ChannelId) -> Option<(SwitchId, PortIndex)> {
        let c = channel.raw().checked_sub(self.num_hosts)?;
        let ports = u32::from(self.ports_per_switch);
        Some((SwitchId::new(c / ports), PortIndex::new((c % ports) as u16)))
    }

    /// Where a channel delivers: the receiving endpoint.
    pub fn channel_target(&self, channel: ChannelId) -> PortTarget {
        match self.channel_source(channel) {
            None => {
                let host = HostId::new(channel.raw());
                PortTarget::Switch {
                    switch: self.host_switch(host),
                    port: self.host_port(host),
                }
            }
            Some((s, p)) => self.port_target(s, p),
        }
    }

    /// The channel that *feeds* input port `(switch, port)` — the upstream
    /// channel whose target is that input (used to return flow-control
    /// credits).
    pub fn input_feeder(&self, switch: SwitchId, port: PortIndex) -> ChannelId {
        match self.port_target(switch, port) {
            PortTarget::Host(h) => self.injection_channel(h),
            PortTarget::Switch { switch: s, port: p } => self.output_channel(s, p),
        }
    }

    /// Medium of a channel.
    #[inline]
    pub fn channel_medium(&self, channel: ChannelId) -> Medium {
        self.media[channel.index()]
    }

    /// The bidirectional link a channel belongs to.
    #[inline]
    pub fn link_of(&self, channel: ChannelId) -> LinkId {
        self.channel_link[channel.index()]
    }

    /// The two opposing channels of a link.
    #[inline]
    pub fn link_channels(&self, link: LinkId) -> (ChannelId, ChannelId) {
        self.links[link.index()]
    }

    /// The opposing channel on the same link.
    pub fn reverse_channel(&self, channel: ChannelId) -> ChannelId {
        let (a, b) = self.link_channels(self.link_of(channel));
        if a == channel {
            b
        } else {
            a
        }
    }

    /// Whether a channel is a host (injection or ejection) channel rather
    /// than an inter-switch channel.
    pub fn is_host_channel(&self, channel: ChannelId) -> bool {
        match self.channel_source(channel) {
            None => true,
            Some((_, p)) => p.index() < self.concentration as usize,
        }
    }

    /// Coordinate of a switch.
    #[inline]
    pub fn switch_coord(&self, switch: SwitchId) -> Coord {
        self.coords[switch.index()]
    }

    /// Like [`RoutingTopology::candidate_ports`] but consulting a
    /// [`LinkMask`]: if the direct (fully-connected) link in a dimension is
    /// disabled, falls back to the enabled adjacent-digit step toward the
    /// destination digit, which turns the dimension into a mesh or torus
    /// ring — the paper's *dynamic topologies* (§5.2).
    ///
    /// `out` is cleared first. If the mask strands a dimension entirely the
    /// dimension contributes no candidate (the caller should treat an empty
    /// result for a remote destination as a partitioned fabric).
    pub fn candidate_ports_masked(
        &self,
        at: SwitchId,
        dest: HostId,
        mask: Option<&LinkMask>,
        out: &mut Vec<PortIndex>,
    ) {
        out.clear();
        let dest_switch = self.host_switch(dest);
        if at == dest_switch {
            out.push(self.host_port(dest));
            return;
        }
        if let FabricKind::TwoTierClos { leaves, spines } = self.kind {
            self.clos_candidates(at, dest_switch, leaves, spines, mask, out);
            return;
        }
        let here = self.switch_coord(at);
        let there = self.switch_coord(dest_switch);
        for dim in 0..self.switch_dims {
            let a = here.digit(dim);
            let b = there.digit(dim);
            if a == b {
                continue;
            }
            let direct = self.port_toward(at, dim, b);
            match mask {
                None => out.push(direct),
                Some(m) => {
                    if m.is_enabled(self.link_of(self.output_channel(at, direct))) {
                        out.push(direct);
                    } else if let Some(step) = self.masked_step(at, dim, a, b, m) {
                        out.push(step);
                    }
                }
            }
        }
    }

    /// Clos routing: a leaf offers every (enabled) spine as a candidate
    /// — the adaptive router load-balances across them — and a spine has
    /// exactly one way down to the destination leaf.
    fn clos_candidates(
        &self,
        at: SwitchId,
        dest_switch: SwitchId,
        leaves: u32,
        spines: u32,
        mask: Option<&LinkMask>,
        out: &mut Vec<PortIndex>,
    ) {
        let enabled = |port: PortIndex| {
            mask.map_or(true, |m| {
                m.is_enabled(self.link_of(self.output_channel(at, port)))
            })
        };
        if at.raw() < leaves {
            for j in 0..spines as u16 {
                let port = PortIndex::new(self.concentration + j);
                if enabled(port) {
                    out.push(port);
                }
            }
        } else {
            let port = PortIndex::new(dest_switch.raw() as u16);
            if enabled(port) {
                out.push(port);
            }
        }
    }

    /// Chooses an adjacent-digit step toward `b` when the direct link is
    /// masked off: prefers the in-line direction, allowing a wraparound
    /// step when the mask keeps it enabled (torus mode).
    fn masked_step(
        &self,
        at: SwitchId,
        dim: usize,
        a: u16,
        b: u16,
        mask: &LinkMask,
    ) -> Option<PortIndex> {
        let k = self.radix;
        let up = (a + 1) % k;
        let down = (a + k - 1) % k;
        // Going in the line direction uses only adjacent-digit links and
        // monotonically closes the |a − b| gap, so it always terminates
        // under any mesh-or-richer mask. The other direction is shorter
        // only via the 0 ↔ k−1 wraparound, so prefer it exactly when
        // that wrap link of this ring is enabled (torus tier) *and* the
        // ring distance is strictly smaller — preferring it blindly
        // oscillates at the masked boundary.
        let dist_up = (i32::from(b) - i32::from(a)).rem_euclid(i32::from(k));
        let dist_down = (i32::from(a) - i32::from(b)).rem_euclid(i32::from(k));
        let line_first = if b > a { up } else { down };
        let line_second = if b > a { down } else { up };
        let wrap_shorter = if b > a {
            dist_down < dist_up // shorter going down, crossing 0 ↔ k−1
        } else {
            dist_up < dist_down
        };
        let order = if wrap_shorter && self.ring_wrap_enabled(at, dim, mask) {
            [line_second, line_first]
        } else {
            [line_first, line_second]
        };
        for digit in order {
            if digit == a {
                continue;
            }
            let port = self.port_toward(at, dim, digit);
            if mask.is_enabled(self.link_of(self.output_channel(at, port))) {
                return Some(port);
            }
        }
        None
    }

    /// Whether the `0 ↔ k−1` wraparound link of `at`'s ring in `dim` is
    /// enabled.
    fn ring_wrap_enabled(&self, at: SwitchId, dim: usize, mask: &LinkMask) -> bool {
        if self.radix < 3 {
            // With k = 2 the only link of the ring is both adjacent and
            // wraparound.
            return true;
        }
        let end = self
            .switch_coord(at)
            .with_digit(dim, self.radix - 1)
            .to_switch_id(self.radix);
        let port = self.port_toward(end, dim, 0);
        mask.is_enabled(self.link_of(self.output_channel(end, port)))
    }

    /// Enumerates the non-minimal (UGAL detour) candidate ports from `at`
    /// toward `dst_switch`: for every dimension whose digit still needs
    /// correction, the port toward each *intermediate* digit (neither the
    /// current nor the destination digit), filtered by `mask`.
    ///
    /// `out` is cleared first. The order is deterministic —
    /// dimension-major, digit-ascending — and load-balancing callers
    /// resolve occupancy ties by first-wins over this order, so a
    /// precomputed table and this on-the-fly enumeration must stay
    /// byte-for-byte identical. A Clos fabric has no dimension rings and
    /// yields no detours.
    pub fn detour_ports_masked(
        &self,
        at: SwitchId,
        dst_switch: SwitchId,
        mask: Option<&LinkMask>,
        out: &mut Vec<PortIndex>,
    ) {
        out.clear();
        if self.switch_dims == 0 {
            return;
        }
        let here = self.switch_coord(at);
        let there = self.switch_coord(dst_switch);
        for dim in 0..self.switch_dims {
            let a = here.digit(dim);
            let b = there.digit(dim);
            if a == b {
                continue;
            }
            for digit in 0..self.radix {
                if digit == a || digit == b {
                    continue;
                }
                let port = self.port_toward(at, dim, digit);
                if let Some(m) = mask {
                    if !m.is_enabled(self.link_of(self.output_channel(at, port))) {
                        continue;
                    }
                }
                out.push(port);
            }
        }
    }

    /// The output port on `switch` toward digit `peer_digit` in `dim`
    /// (same port layout as [`FlattenedButterfly::port_toward`]).
    pub fn port_toward(&self, switch: SwitchId, dim: usize, peer_digit: u16) -> PortIndex {
        let own = self.switch_coord(switch).digit(dim);
        debug_assert_ne!(own, peer_digit);
        let off = if peer_digit < own {
            peer_digit
        } else {
            peer_digit - 1
        };
        PortIndex::new(self.concentration + dim as u16 * (self.radix - 1) + off)
    }
}

impl RoutingTopology for FabricGraph {
    fn num_hosts(&self) -> usize {
        self.num_hosts as usize
    }

    fn num_switches(&self) -> usize {
        self.num_switches as usize
    }

    fn ports_per_switch(&self) -> usize {
        self.ports_per_switch as usize
    }

    fn host_switch(&self, host: HostId) -> SwitchId {
        SwitchId::new(host.raw() / u32::from(self.concentration))
    }

    fn host_port(&self, host: HostId) -> PortIndex {
        PortIndex::new((host.raw() % u32::from(self.concentration)) as u16)
    }

    fn port_target(&self, switch: SwitchId, port: PortIndex) -> PortTarget {
        self.port_targets[switch.index() * self.ports_per_switch as usize + port.index()]
    }

    fn candidate_ports(&self, at: SwitchId, dest: HostId, out: &mut Vec<PortIndex>) {
        self.candidate_ports_masked(at, dest, None, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FlattenedButterfly;

    fn small() -> FabricGraph {
        FlattenedButterfly::new(2, 4, 3).unwrap().build_fabric()
    }

    #[test]
    fn counts_match_analytical_model() {
        let f = FlattenedButterfly::new(2, 4, 3).unwrap();
        let g = f.build_fabric();
        assert_eq!(g.num_hosts(), f.num_hosts());
        assert_eq!(g.num_switches(), f.num_switches());
        assert_eq!(g.num_links(), f.total_links());
        assert_eq!(
            g.num_channels(),
            f.num_hosts() + f.num_switches() * f.ports_per_switch() as usize
        );
    }

    #[test]
    fn every_link_pairs_opposing_channels() {
        let g = small();
        for l in 0..g.num_links() {
            let link = LinkId::new(l as u32);
            let (a, b) = g.link_channels(link);
            assert_ne!(a, b);
            assert_eq!(g.link_of(a), link);
            assert_eq!(g.link_of(b), link);
            assert_eq!(g.reverse_channel(a), b);
            assert_eq!(g.reverse_channel(b), a);
            // Opposing channels connect the same pair of endpoints.
            assert_eq!(g.channel_medium(a), g.channel_medium(b));
        }
    }

    #[test]
    fn injection_and_ejection_pair_up() {
        let g = small();
        let h = HostId::new(5);
        let inj = g.injection_channel(h);
        let eject = g.output_channel(g.host_switch(h), g.host_port(h));
        assert_eq!(g.reverse_channel(inj), eject);
        assert_eq!(g.channel_target(eject), PortTarget::Host(h));
        assert!(g.is_host_channel(inj));
        assert!(g.is_host_channel(eject));
    }

    #[test]
    fn channel_source_round_trips() {
        let g = small();
        for s in 0..g.num_switches() {
            for p in 0..g.ports_per_switch() {
                let (sid, pid) = (SwitchId::new(s as u32), PortIndex::new(p as u16));
                let ch = g.output_channel(sid, pid);
                assert_eq!(g.channel_source(ch), Some((sid, pid)));
            }
        }
        assert_eq!(g.channel_source(ChannelId::new(0)), None);
    }

    #[test]
    fn input_feeder_is_the_upstream_channel() {
        let g = small();
        // For an inter-switch port, the feeder of (s, p) is the peer's
        // output channel.
        let s = SwitchId::new(0);
        let p = PortIndex::new(2); // first inter-switch port (c = 2)
        let PortTarget::Switch { switch, port } = g.port_target(s, p) else {
            panic!("expected switch port");
        };
        assert_eq!(g.input_feeder(switch, port), g.output_channel(s, p));
    }

    #[test]
    fn media_classification() {
        let g = small();
        // Host channels electrical.
        assert_eq!(g.channel_medium(ChannelId::new(0)), Medium::Electrical);
        let f = FlattenedButterfly::new(2, 4, 3).unwrap();
        let mut electrical = 0usize;
        let mut optical = 0usize;
        for l in 0..g.num_links() {
            let (a, _) = g.link_channels(LinkId::new(l as u32));
            match g.channel_medium(a) {
                Medium::Electrical => electrical += 1,
                Medium::Optical => optical += 1,
            }
        }
        assert_eq!(electrical, f.link_count(Medium::Electrical));
        assert_eq!(optical, f.link_count(Medium::Optical));
    }

    #[test]
    fn candidates_are_one_per_unresolved_dimension() {
        let g = small();
        let mut out = Vec::new();
        // Host 0 lives on switch 0 at (0,0); a host on switch 15 = (3,3)
        // differs in both dimensions.
        let dest = HostId::new(31); // switch 15
        g.candidate_ports(SwitchId::new(0), dest, &mut out);
        assert_eq!(out.len(), 2);
        // Local delivery: a single host port.
        g.candidate_ports(SwitchId::new(15), dest, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0], g.host_port(dest));
    }

    #[test]
    fn candidates_make_progress() {
        // Following any candidate strictly decreases hop distance.
        let f = FlattenedButterfly::new(2, 3, 4).unwrap();
        let g = f.build_fabric();
        let mut out = Vec::new();
        for h in [0u32, 5, 17, 26] {
            let dest = HostId::new(h % g.num_hosts() as u32);
            for s in 0..g.num_switches() {
                let at = SwitchId::new(s as u32);
                let d0 = f.hop_distance(at, g.host_switch(dest));
                g.candidate_ports(at, dest, &mut out);
                if at == g.host_switch(dest) {
                    continue;
                }
                assert_eq!(out.len(), d0);
                for &p in &out {
                    let PortTarget::Switch { switch, .. } = g.port_target(at, p) else {
                        panic!("candidate must be an inter-switch port");
                    };
                    assert_eq!(f.hop_distance(switch, g.host_switch(dest)), d0 - 1);
                }
            }
        }
    }
}
