//! Datacenter network topology models for energy-proportional networks.
//!
//! This crate implements the topologies studied by Abts et&nbsp;al.,
//! *Energy Proportional Datacenter Networks* (ISCA 2010):
//!
//! * [`FlattenedButterfly`] — the *k*-ary *n*-flat direct topology with
//!   configurable concentration *c*, written `(c, k, n)` as in the paper.
//! * [`FoldedClos`] — the chassis-based folded-Clos (fat tree) baseline the
//!   paper compares against (§2.2).
//!
//! Both expose analytical *part counts* (switch chips, electrical vs optical
//! links) and bisection bandwidth, which feed the power comparison of
//! Table&nbsp;1 in the companion `epnet-power` crate. The flattened butterfly
//! additionally lowers into a port-level [`FabricGraph`] consumed by the
//! event-driven simulator in `epnet-sim`, including the minimal-adaptive
//! route-candidate computation the paper relies on ("the choice of a packet's
//! route is inherently a local decision", §3.2).
//!
//! # Example
//!
//! ```
//! use epnet_topology::{FlattenedButterfly, Medium};
//!
//! // The paper's evaluation network: a 15-ary 3-flat with c = 15 (§4.1).
//! let fbfly = FlattenedButterfly::new(15, 15, 3)?;
//! assert_eq!(fbfly.num_hosts(), 3375);
//! assert_eq!(fbfly.num_switches(), 225);
//! assert_eq!(fbfly.ports_per_switch(), 15 + 14 * 2);
//!
//! // The 32k-host comparison network of Table 1: an 8-ary 5-flat.
//! let big = FlattenedButterfly::new(8, 8, 5)?;
//! assert_eq!(big.num_hosts(), 32_768);
//! assert_eq!(big.link_count(Medium::Electrical), 47_104);
//! assert_eq!(big.link_count(Medium::Optical), 43_008);
//! # Ok::<(), epnet_topology::TopologyError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod bom;
mod clos;
mod coord;
mod error;
mod fabric;
mod fbfly;
mod ids;
mod route_table;
mod routes;
mod shard;
mod subtopology;
mod twotier;

pub use bom::BillOfMaterials;
pub use clos::{ChassisSpec, FoldedClos};
pub use coord::Coord;
pub use error::TopologyError;
pub use fabric::{FabricGraph, FabricKind, Medium, PortTarget, RoutingTopology};
pub use fbfly::FlattenedButterfly;
pub use ids::{ChannelId, HostId, LinkId, PortIndex, SwitchId};
pub use route_table::RouteTable;
pub use routes::HopHistogram;
pub use shard::ShardMap;
pub use subtopology::{LinkMask, SubtopologyKind};
pub use twotier::TwoTierClos;
