//! A simulatable two-tier (leaf/spine) folded Clos.
//!
//! The paper's Table-1 folded Clos is an analytical chassis model
//! ([`FoldedClos`](crate::FoldedClos)); this type is its *simulatable*
//! counterpart: a flat leaf/spine fabric built from single chips that
//! lowers into a [`FabricGraph`] just like the flattened butterfly, so
//! the two topologies can be compared under the event-driven simulator
//! as well as on paper.

use crate::{FabricGraph, Medium, TopologyError};
use serde::{Deserialize, Serialize};

/// A two-tier folded Clos: `leaves` leaf switches with `concentration`
/// hosts each, fully meshed to `spines` spine switches.
///
/// For the dense channel indexing the simulator relies on, every switch
/// must have the same radix, i.e. `leaves == concentration + spines`.
/// The non-blocking family satisfying that is `leaves = 2c, spines = c`
/// — use [`TwoTierClos::non_blocking`].
///
/// ```
/// use epnet_topology::TwoTierClos;
/// let clos = TwoTierClos::non_blocking(16)?; // 32 leaves x 16 hosts
/// assert_eq!(clos.num_hosts(), 512);
/// assert_eq!(clos.num_switches(), 48);
/// assert_eq!(clos.ports_per_switch(), 32);
/// # Ok::<(), epnet_topology::TopologyError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TwoTierClos {
    concentration: u16,
    spines: u32,
    leaves: u32,
}

impl TwoTierClos {
    /// Builds a two-tier Clos with explicit parameters.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::InvalidChassis`] unless
    /// `leaves == concentration + spines` (the uniform-radix constraint)
    /// with at least one host and one spine, or
    /// [`TopologyError::TooLarge`] if entity counts overflow `u32`.
    pub fn new(concentration: u16, spines: u32, leaves: u32) -> Result<Self, TopologyError> {
        if concentration == 0 {
            return Err(TopologyError::ZeroConcentration);
        }
        if spines == 0 || u64::from(leaves) != u64::from(concentration) + u64::from(spines) {
            return Err(TopologyError::InvalidChassis {
                chip_radix: concentration,
                chassis_ports: leaves,
            });
        }
        let hosts = u64::from(leaves) * u64::from(concentration);
        let channels = hosts + (u64::from(leaves) + u64::from(spines)) * u64::from(leaves);
        if hosts > u32::MAX as u64 || channels > u32::MAX as u64 {
            return Err(TopologyError::TooLarge { what: "hosts" });
        }
        Ok(Self {
            concentration,
            spines,
            leaves,
        })
    }

    /// The non-blocking configuration for `concentration` hosts per
    /// leaf: `2c` leaves and `c` spines, `2c²` hosts on radix-`2c`
    /// chips.
    ///
    /// # Errors
    ///
    /// Propagates the validation of [`TwoTierClos::new`].
    pub fn non_blocking(concentration: u16) -> Result<Self, TopologyError> {
        Self::new(
            concentration,
            u32::from(concentration),
            2 * u32::from(concentration),
        )
    }

    /// A multi-pod Clos: `pods` pods of `c` leaves each, every leaf
    /// carrying `c` hosts, i.e. `pods·c` leaves over `c·(pods − 1)`
    /// spines. The shape follows Solnushkin's automated fat-tree
    /// configurations, which grow host count by adding pods of a fixed
    /// leaf design; the uniform-radix constraint holds for every pod
    /// count because `pods·c = c + c·(pods − 1)`.
    ///
    /// `multi_pod(c, 2)` is exactly [`TwoTierClos::non_blocking`]`(c)`;
    /// larger pod counts scale hosts as `pods·c²` while widening the
    /// spine tier, so the fabric stays non-blocking at every size.
    ///
    /// # Errors
    ///
    /// Propagates the validation of [`TwoTierClos::new`] (at least two
    /// pods, counts within `u32`).
    pub fn multi_pod(concentration: u16, pods: u32) -> Result<Self, TopologyError> {
        let c = u32::from(concentration);
        let spines = c.saturating_mul(pods.saturating_sub(1));
        let leaves = pods.saturating_mul(c);
        Self::new(concentration, spines, leaves)
    }

    /// Hosts per leaf.
    #[inline]
    pub fn concentration(&self) -> u16 {
        self.concentration
    }

    /// Spine switch count.
    #[inline]
    pub fn spines(&self) -> u32 {
        self.spines
    }

    /// Leaf switch count.
    #[inline]
    pub fn leaves(&self) -> u32 {
        self.leaves
    }

    /// Total hosts.
    pub fn num_hosts(&self) -> usize {
        self.leaves as usize * self.concentration as usize
    }

    /// Total switch chips (leaves + spines).
    pub fn num_switches(&self) -> usize {
        (self.leaves + self.spines) as usize
    }

    /// Ports per switch (uniform by construction).
    pub fn ports_per_switch(&self) -> u16 {
        self.leaves as u16
    }

    /// Over-subscription ratio `c / spines` (1.0 = non-blocking).
    pub fn oversubscription(&self) -> f64 {
        f64::from(self.concentration) / self.spines as f64
    }

    /// Bidirectional link count by medium: host links are electrical,
    /// leaf↔spine links optical.
    pub fn link_count(&self, medium: Medium) -> usize {
        match medium {
            Medium::Electrical => self.num_hosts(),
            Medium::Optical => self.leaves as usize * self.spines as usize,
        }
    }

    /// Total bidirectional links.
    pub fn total_links(&self) -> usize {
        self.link_count(Medium::Electrical) + self.link_count(Medium::Optical)
    }

    /// Bisection bandwidth in Gb/s at the given per-channel rate
    /// (both directions of the leaf-half cut through the spines).
    pub fn bisection_gbps(&self, link_gbps: f64) -> f64 {
        // Half the leaves' uplinks cross the cut in each direction.
        f64::from(self.leaves / 2) * self.spines as f64 * link_gbps * 2.0
    }

    /// Lowers into the simulator's port-level graph.
    pub fn build_fabric(&self) -> FabricGraph {
        FabricGraph::from_two_tier_clos(self.leaves, self.spines, self.concentration)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FabricKind, HostId, PortTarget, RoutingTopology, SwitchId};

    #[test]
    fn non_blocking_shape() {
        let c = TwoTierClos::non_blocking(8).unwrap();
        assert_eq!(c.num_hosts(), 128);
        assert_eq!(c.leaves(), 16);
        assert_eq!(c.spines(), 8);
        assert_eq!(c.num_switches(), 24);
        assert_eq!(c.ports_per_switch(), 16);
        assert_eq!(c.oversubscription(), 1.0);
        assert_eq!(c.total_links(), 128 + 128);
        // 8 leaves' uplinks cross: 8 x 8 links x 40 x 2.
        assert_eq!(c.bisection_gbps(40.0), 8.0 * 8.0 * 40.0 * 2.0);
    }

    #[test]
    fn multi_pod_shapes_and_boms() {
        // Two pods are the non-blocking base case.
        assert_eq!(
            TwoTierClos::multi_pod(8, 2).unwrap(),
            TwoTierClos::non_blocking(8).unwrap()
        );

        // Four pods of c = 8: 32 leaves over 24 spines, 256 hosts.
        let c = TwoTierClos::multi_pod(8, 4).unwrap();
        assert_eq!(c.leaves(), 32);
        assert_eq!(c.spines(), 24);
        assert_eq!(c.num_hosts(), 256);
        assert_eq!(c.num_switches(), 56);
        assert_eq!(c.ports_per_switch(), 32);
        assert_eq!(c.link_count(Medium::Electrical), 256);
        assert_eq!(c.link_count(Medium::Optical), 32 * 24);
        assert_eq!(c.total_links(), 256 + 32 * 24);
        // The uniform-radix identity holds for every pod count.
        for pods in 2..10 {
            let t = TwoTierClos::multi_pod(6, pods).unwrap();
            assert_eq!(
                u64::from(t.leaves()),
                u64::from(t.concentration()) + u64::from(t.spines()),
                "pods = {pods}"
            );
            assert_eq!(t.num_hosts(), pods as usize * 36);
        }
        // Fewer than two pods has no spine tier.
        assert!(TwoTierClos::multi_pod(8, 1).is_err());
        assert!(TwoTierClos::multi_pod(8, 0).is_err());
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(TwoTierClos::new(0, 8, 8).is_err());
        assert!(TwoTierClos::new(8, 0, 8).is_err());
        assert!(TwoTierClos::new(8, 8, 17).is_err()); // leaves != c + spines
    }

    #[test]
    fn fabric_counts_match() {
        let c = TwoTierClos::non_blocking(4).unwrap();
        let g = c.build_fabric();
        assert_eq!(
            g.kind(),
            FabricKind::TwoTierClos {
                leaves: 8,
                spines: 4
            }
        );
        assert_eq!(g.num_hosts(), c.num_hosts());
        assert_eq!(g.num_switches(), c.num_switches());
        assert_eq!(g.num_links(), c.total_links());
        assert_eq!(g.num_channels(), 2 * g.num_links());
    }

    #[test]
    fn leaf_spine_wiring_is_symmetric() {
        let g = TwoTierClos::non_blocking(4).unwrap().build_fabric();
        // Leaf 3's uplink port to spine 1 must point back.
        let leaf = SwitchId::new(3);
        let up = crate::PortIndex::new(4 + 1);
        let PortTarget::Switch {
            switch: spine,
            port: down,
        } = g.port_target(leaf, up)
        else {
            panic!("expected spine");
        };
        assert_eq!(spine, SwitchId::new(8 + 1));
        let PortTarget::Switch {
            switch: back,
            port: back_port,
        } = g.port_target(spine, down)
        else {
            panic!("expected leaf");
        };
        assert_eq!(back, leaf);
        assert_eq!(back_port, up);
    }

    #[test]
    fn routing_is_up_then_down() {
        let g = TwoTierClos::non_blocking(4).unwrap().build_fabric();
        let mut out = Vec::new();
        // Host 30 lives on leaf 7; from leaf 0 every spine is a
        // candidate.
        let dest = HostId::new(30);
        g.candidate_ports(SwitchId::new(0), dest, &mut out);
        assert_eq!(out.len(), 4, "all spines are legal up-ports");
        // From a spine there is exactly one way down.
        g.candidate_ports(SwitchId::new(9), dest, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].index(), 7);
        // Local delivery.
        g.candidate_ports(SwitchId::new(7), dest, &mut out);
        assert_eq!(out, vec![g.host_port(dest)]);
    }

    #[test]
    fn greedy_walk_reaches_every_destination() {
        let g = TwoTierClos::non_blocking(4).unwrap().build_fabric();
        let mut out = Vec::new();
        for h in 0..g.num_hosts() as u32 {
            let dest = HostId::new(h);
            for s in 0..8u32 {
                let mut at = SwitchId::new(s);
                let mut hops = 0;
                loop {
                    g.candidate_ports(at, dest, &mut out);
                    assert!(!out.is_empty());
                    match g.port_target(at, out[0]) {
                        PortTarget::Host(got) => {
                            assert_eq!(got, dest);
                            break;
                        }
                        PortTarget::Switch { switch, .. } => at = switch,
                    }
                    hops += 1;
                    assert!(hops <= 2, "clos diameter is two switch hops");
                }
            }
        }
    }

    #[test]
    fn media_split() {
        let c = TwoTierClos::non_blocking(4).unwrap();
        let g = c.build_fabric();
        let mut electrical = 0;
        let mut optical = 0;
        for l in 0..g.num_links() {
            let (a, _) = g.link_channels(crate::LinkId::new(l as u32));
            match g.channel_medium(a) {
                Medium::Electrical => electrical += 1,
                Medium::Optical => optical += 1,
            }
        }
        assert_eq!(electrical, c.link_count(Medium::Electrical));
        assert_eq!(optical, c.link_count(Medium::Optical));
    }
}
