//! Fabric partitioning for the sharded parallel simulation engine.
//!
//! The conservative PDES engine in `epnet-sim` splits a fabric across
//! worker shards by switch: contiguous switch-id ranges, each shard
//! owning its switches' output channels and the injection/ejection
//! channels of the hosts attached to them. Intra-group traffic on a
//! flattened butterfly (dense switch ids within a group) then stays
//! shard-local, and only inter-switch channels whose peer switch lives
//! on another shard cross the boundary.
//!
//! The partition is pure bookkeeping: the parallel engine's output is
//! byte-identical to the serial engine at every width, so the choice of
//! partition affects wall clock only.

use crate::fabric::{FabricGraph, PortTarget};
use crate::ids::{ChannelId, HostId, PortIndex, SwitchId};
use crate::RoutingTopology;

/// A partition of a fabric's switches, hosts and channels into shards.
#[derive(Debug, Clone)]
pub struct ShardMap {
    num_shards: usize,
    /// Shard owning each switch (contiguous ranges).
    switch_shard: Vec<u32>,
    /// Shard owning each host: its switch's shard.
    host_shard: Vec<u32>,
    /// Shard owning each channel: the shard of the switch it leaves
    /// (for injection channels, the shard of the host's switch).
    channel_shard: Vec<u32>,
    /// For switch→switch channels, the shard of the *receiving* switch;
    /// equals the owning shard for every intra-shard channel and for
    /// all host channels.
    target_shard: Vec<u32>,
    /// Number of channels whose receiving switch is on another shard.
    cross_channels: usize,
}

impl ShardMap {
    /// Partitions `fabric` into at most `width` shards of contiguous
    /// switch ids. `width` is clamped to `[1, num_switches]`.
    pub fn build(fabric: &FabricGraph, width: usize) -> Self {
        let switches = fabric.num_switches();
        let num_shards = width.clamp(1, switches.max(1));
        let per = switches.div_ceil(num_shards);
        let switch_shard: Vec<u32> = (0..switches).map(|s| (s / per) as u32).collect();
        // Ceil division can leave trailing shards empty (e.g. 5 switches
        // over 4 shards packs 2+2+1); the effective shard count is
        // whatever the last switch landed in, plus one.
        let num_shards = switch_shard.last().map_or(1, |&s| s as usize + 1);

        let host_shard: Vec<u32> = (0..fabric.num_hosts())
            .map(|h| switch_shard[fabric.host_switch(HostId::new(h as u32)).index()])
            .collect();

        let mut channel_shard = vec![0u32; fabric.num_channels()];
        let mut target_shard = vec![0u32; fabric.num_channels()];
        for (h, &shard) in host_shard.iter().enumerate() {
            let ch = fabric.injection_channel(HostId::new(h as u32));
            channel_shard[ch.index()] = shard;
            target_shard[ch.index()] = shard;
        }
        let ports = fabric.ports_per_switch();
        let mut cross_channels = 0usize;
        for s in 0..switches {
            for p in 0..ports {
                let ch = fabric.output_channel(SwitchId::new(s as u32), PortIndex::new(p as u16));
                channel_shard[ch.index()] = switch_shard[s];
                let tgt = match fabric.channel_target(ch) {
                    PortTarget::Switch { switch, .. } => switch_shard[switch.index()],
                    // Ejection channels terminate at a host on this
                    // switch — always shard-local.
                    PortTarget::Host(_) => switch_shard[s],
                };
                target_shard[ch.index()] = tgt;
                if tgt != switch_shard[s] {
                    cross_channels += 1;
                }
            }
        }

        Self {
            num_shards,
            switch_shard,
            host_shard,
            channel_shard,
            target_shard,
            cross_channels,
        }
    }

    /// Number of (non-empty) shards in the partition.
    #[inline]
    pub fn num_shards(&self) -> usize {
        self.num_shards
    }

    /// The shard owning `switch`.
    #[inline]
    pub fn switch_shard(&self, switch: SwitchId) -> usize {
        self.switch_shard[switch.index()] as usize
    }

    /// The shard owning `host` (its switch's shard).
    #[inline]
    pub fn host_shard(&self, host: HostId) -> usize {
        self.host_shard[host.index()] as usize
    }

    /// The shard owning `channel` (the sending side).
    #[inline]
    pub fn channel_shard(&self, channel: ChannelId) -> usize {
        self.channel_shard[channel.index()] as usize
    }

    /// The shard of the switch (or host) that *receives* from
    /// `channel`. Differs from [`Self::channel_shard`] exactly on
    /// cross-shard switch→switch channels.
    #[inline]
    pub fn target_shard(&self, channel: ChannelId) -> usize {
        self.target_shard[channel.index()] as usize
    }

    /// Whether `channel` delivers into a different shard than it leaves.
    #[inline]
    pub fn is_cross_shard(&self, channel: ChannelId) -> bool {
        self.channel_shard[channel.index()] != self.target_shard[channel.index()]
    }

    /// Number of cross-shard channels in the partition (diagnostics:
    /// the fraction of traffic that pays the coordinator round-trip).
    #[inline]
    pub fn cross_channels(&self) -> usize {
        self.cross_channels
    }

    /// Visits every cross-shard channel as
    /// `(channel, sending shard, receiving shard)` — the census the
    /// parallel engine folds per-channel arrival bounds over to build
    /// its per-shard-pair lookahead matrix.
    pub fn for_each_cross_channel(&self, mut f: impl FnMut(ChannelId, usize, usize)) {
        for ch in 0..self.channel_shard.len() {
            let snd = self.channel_shard[ch];
            let rcv = self.target_shard[ch];
            if snd != rcv {
                f(ChannelId::new(ch as u32), snd as usize, rcv as usize);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FlattenedButterfly;

    fn fabric() -> FabricGraph {
        FlattenedButterfly::new(2, 8, 2)
            .expect("valid shape")
            .build_fabric()
    }

    #[test]
    fn partition_covers_everything_and_respects_ownership() {
        let f = fabric();
        for width in [1usize, 2, 4, 8, 64] {
            let map = ShardMap::build(&f, width);
            assert!(map.num_shards() >= 1);
            assert!(map.num_shards() <= width.max(1));
            assert!(map.num_shards() <= f.num_switches());
            // Hosts follow their switch.
            for h in 0..f.num_hosts() {
                let hid = HostId::new(h as u32);
                assert_eq!(
                    map.host_shard(hid),
                    map.switch_shard(f.host_switch(hid)),
                    "host {h} must live on its switch's shard"
                );
                let inj = f.injection_channel(hid);
                assert_eq!(map.channel_shard(inj), map.host_shard(hid));
                assert!(!map.is_cross_shard(inj), "injection is shard-local");
            }
            // Every channel is owned, and ejection channels never cross.
            for s in 0..f.num_switches() {
                for p in 0..f.ports_per_switch() {
                    let ch = f.output_channel(SwitchId::new(s as u32), PortIndex::new(p as u16));
                    assert_eq!(
                        map.channel_shard(ch),
                        map.switch_shard(SwitchId::new(s as u32))
                    );
                    if let PortTarget::Host(_) = f.channel_target(ch) {
                        assert!(!map.is_cross_shard(ch), "ejection is shard-local");
                    }
                }
            }
        }
    }

    #[test]
    fn single_shard_has_no_cross_channels() {
        let f = fabric();
        let map = ShardMap::build(&f, 1);
        assert_eq!(map.num_shards(), 1);
        assert_eq!(map.cross_channels(), 0);
        for ch in 0..f.num_channels() {
            assert!(!map.is_cross_shard(ChannelId::new(ch as u32)));
        }
    }

    #[test]
    fn wider_partitions_expose_cross_shard_links() {
        let f = fabric();
        let map = ShardMap::build(&f, 4);
        assert_eq!(map.num_shards(), 4);
        assert!(map.cross_channels() > 0, "FBFLY groups interconnect");
        // Cross-shard channels are symmetric in aggregate: each one is
        // counted once, from the sending side.
        let counted = (0..f.num_channels())
            .filter(|&ch| map.is_cross_shard(ChannelId::new(ch as u32)))
            .count();
        assert_eq!(counted, map.cross_channels());
    }

    #[test]
    fn cross_channel_census_visits_each_cross_channel_once() {
        let f = fabric();
        for width in [1usize, 2, 4, 8] {
            let map = ShardMap::build(&f, width);
            let mut visited = 0usize;
            map.for_each_cross_channel(|ch, snd, rcv| {
                visited += 1;
                assert_ne!(snd, rcv);
                assert_eq!(snd, map.channel_shard(ch));
                assert_eq!(rcv, map.target_shard(ch));
                assert!(map.is_cross_shard(ch));
            });
            assert_eq!(visited, map.cross_channels());
        }
    }
}
