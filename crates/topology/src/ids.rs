//! Strongly-typed identifiers for fabric entities.
//!
//! The simulator indexes hosts, switches, ports, and channels with dense
//! integers; these newtypes keep the different index spaces from being
//! confused (C-NEWTYPE).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a host (terminal node / server NIC), dense in
/// `0..num_hosts`.
///
/// ```
/// use epnet_topology::HostId;
/// let h = HostId::new(42);
/// assert_eq!(h.index(), 42);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct HostId(u32);

/// Identifier of a switch chip, dense in `0..num_switches`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SwitchId(u32);

/// A port position on a particular switch (`0..ports_per_switch`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PortIndex(u16);

/// Identifier of a *unidirectional* channel, dense in `0..num_channels`.
///
/// The paper distinguishes the *link* (a bidirectional pair of channels)
/// from the *channel* (one direction): "the routing algorithm views each
/// unidirectional channel in the network as a routing resource" (§3.3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ChannelId(u32);

/// Identifier of a *bidirectional* link (a pair of opposing channels),
/// dense in `0..num_links`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LinkId(u32);

macro_rules! impl_id {
    ($ty:ident, $label:expr) => {
        impl $ty {
            /// Creates the identifier from its dense index.
            #[inline]
            pub const fn new(index: u32) -> Self {
                Self(index)
            }

            /// Returns the dense index as a `usize`, suitable for array
            /// indexing.
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }

            /// Returns the raw `u32` index.
            #[inline]
            pub const fn raw(self) -> u32 {
                self.0
            }
        }

        impl fmt::Display for $ty {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($label, "{}"), self.0)
            }
        }

        impl From<$ty> for usize {
            #[inline]
            fn from(id: $ty) -> usize {
                id.index()
            }
        }
    };
}

impl_id!(HostId, "h");
impl_id!(SwitchId, "s");
impl_id!(ChannelId, "ch");
impl_id!(LinkId, "ln");

impl PortIndex {
    /// Creates a port index.
    #[inline]
    pub const fn new(index: u16) -> Self {
        Self(index)
    }

    /// Returns the port position as a `usize`.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw `u16` index.
    #[inline]
    pub const fn raw(self) -> u16 {
        self.0
    }
}

impl fmt::Display for PortIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl From<PortIndex> for usize {
    #[inline]
    fn from(p: PortIndex) -> usize {
        p.index()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_round_trip() {
        assert_eq!(HostId::new(7).index(), 7);
        assert_eq!(SwitchId::new(9).raw(), 9);
        assert_eq!(PortIndex::new(3).index(), 3);
        assert_eq!(ChannelId::new(11).index(), 11);
        assert_eq!(LinkId::new(12).index(), 12);
    }

    #[test]
    fn ids_display() {
        assert_eq!(HostId::new(1).to_string(), "h1");
        assert_eq!(SwitchId::new(2).to_string(), "s2");
        assert_eq!(PortIndex::new(3).to_string(), "p3");
        assert_eq!(ChannelId::new(4).to_string(), "ch4");
        assert_eq!(LinkId::new(5).to_string(), "ln5");
    }

    #[test]
    fn ids_order_and_hash() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(HostId::new(1));
        set.insert(HostId::new(1));
        assert_eq!(set.len(), 1);
        assert!(SwitchId::new(1) < SwitchId::new(2));
    }

    #[test]
    fn ids_into_usize() {
        let v = [10u8, 20, 30];
        assert_eq!(v[usize::from(PortIndex::new(1))], 20);
        assert_eq!(v[usize::from(HostId::new(2))], 30);
    }
}
