//! Offline stand-in for `serde_json`.
//!
//! Renders and parses the vendored serde [`Value`] tree as JSON. The
//! output is deterministic: the same value always produces the same
//! bytes, which the workspace's thread-count determinism tests rely on.

pub use serde::Value;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A JSON serialization or parse error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    fn msg(m: impl Into<String>) -> Self {
        Self(m.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Self(e.to_string())
    }
}

impl From<Error> for std::io::Error {
    fn from(e: Error) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e.0)
    }
}

/// Lowers any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Rebuilds a deserializable type from a [`Value`] tree.
pub fn from_value<T: Deserialize>(value: Value) -> Result<T, Error> {
    Ok(T::from_value(&value)?)
}

/// Compact JSON text.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Pretty-printed JSON text (two-space indent).
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Writes compact JSON into an `io::Write`.
pub fn to_writer<W: std::io::Write, T: Serialize + ?Sized>(
    mut writer: W,
    value: &T,
) -> Result<(), Error> {
    let s = to_string(&value)?;
    writer
        .write_all(s.as_bytes())
        .map_err(|e| Error::msg(e.to_string()))
}

/// Parses JSON text into any deserializable type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg("trailing characters after JSON value"));
    }
    Ok(T::from_value(&v)?)
}

// ---------------------------------------------------------------------
// Emitter
// ---------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(n) => write_f64(out, *n),
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => write_delimited(out, indent, level, '[', ']', items.len(), |out, i| {
            write_value(out, &items[i], indent, level + 1)
        }),
        Value::Map(entries) => {
            write_delimited(out, indent, level, '{', '}', entries.len(), |out, i| {
                write_string(out, &entries[i].0);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, &entries[i].1, indent, level + 1)
            })
        }
    }
}

fn write_delimited(
    out: &mut String,
    indent: Option<usize>,
    level: usize,
    open: char,
    close: char,
    count: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if count == 0 {
        out.push(close);
        return;
    }
    for i in 0..count {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat(' ').take(width * (level + 1)));
        }
        item(out, i);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat(' ').take(width * level));
    }
    out.push(close);
}

fn write_f64(out: &mut String, n: f64) {
    if n.is_finite() {
        if n == n.trunc() && n.abs() < 1e15 {
            // Keep integral floats visibly floating-point, as serde_json
            // does ("2.0"), so a round trip preserves the number's shape.
            out.push_str(&format!("{n:.1}"));
        } else {
            out.push_str(&format!("{n}"));
        }
    } else {
        // JSON has no NaN/Inf; emit null like serde_json's lossy modes.
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(Error::msg("expected ',' or ']' in array")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => return Err(Error::msg("expected ',' or '}' in object")),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error::msg(format!(
                "unexpected input {other:?} at byte {}",
                self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::msg("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::msg("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::msg("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::msg("bad \\u escape"))?;
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::msg("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error::msg("bad escape sequence")),
                    }
                    self.pos += 1;
                }
                _ => return Err(Error::msg("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::msg(format!("invalid number '{text}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        for v in [
            Value::Null,
            Value::Bool(true),
            Value::U64(18_446_744_073_709_551_615),
            Value::I64(-42),
            Value::F64(1.5),
            Value::Str("a \"quoted\"\nline".into()),
        ] {
            let s = to_string(&v).unwrap();
            let back: Value = from_str(&s).unwrap();
            assert_eq!(v, back, "{s}");
        }
    }

    #[test]
    fn roundtrip_compound() {
        let v = Value::Map(vec![
            ("a".into(), Value::Seq(vec![Value::U64(1), Value::F64(2.0)])),
            ("b".into(), Value::Map(vec![])),
        ]);
        let compact = to_string(&v).unwrap();
        assert_eq!(compact, r#"{"a":[1,2.0],"b":{}}"#);
        let back: Value = from_str(&compact).unwrap();
        assert_eq!(v, back);
        let pretty = to_string_pretty(&v).unwrap();
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(v, back);
    }
}
