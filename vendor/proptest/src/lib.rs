//! Offline stand-in for `proptest`.
//!
//! Implements the slice of the proptest API the epnet workspace uses:
//! the [`proptest!`] macro with an optional `#![proptest_config(..)]`
//! header, [`strategy::Strategy`] with `prop_map`, range and tuple
//! strategies, [`strategy::Just`], [`arbitrary::any`], [`prop_oneof!`],
//! and the `prop_assert*` / [`prop_assume!`] macros.
//!
//! Inputs are drawn from a deterministic per-(test, case) generator, so
//! failures reproduce exactly across runs. Unlike real proptest there
//! is no shrinking and no regression-file persistence — a failing case
//! reports the case index instead of a minimised input.

pub mod test_runner {
    /// Runner configuration. Only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` random cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    /// Deterministic xoshiro256++ generator, seeded per (test, case).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Generator for one case of one named property test. The same
        /// (name, case) pair always yields the same stream.
        pub fn for_case(name: &str, case: u64) -> Self {
            // FNV-1a over the test name, mixed with the case index.
            let mut h: u64 = 0xcbf29ce484222325;
            for b in name.as_bytes() {
                h ^= u64::from(*b);
                h = h.wrapping_mul(0x100000001b3);
            }
            let mut sm = h ^ case.wrapping_mul(0x9E3779B97F4A7C15);
            let mut next = || {
                sm = sm.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }

        /// The next 64 uniformly distributed bits.
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// The next sample from `[0, 1)`.
        pub fn next_unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// A strategy applying `f` to every generated value.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { source: self, f }
        }

        /// Type-erases the strategy (used by [`prop_oneof!`]).
        fn boxed(self) -> Box<dyn Strategy<Value = Self::Value>>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    impl<V> Strategy for Box<dyn Strategy<Value = V>> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            (**self).generate(rng)
        }
    }

    /// Always generates a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;

        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.source.generate(rng))
        }
    }

    /// Uniform choice between type-erased alternatives ([`prop_oneof!`]).
    pub struct Union<V> {
        options: Vec<Box<dyn Strategy<Value = V>>>,
    }

    impl<V> Union<V> {
        /// A union over `options`; each generation picks one uniformly.
        pub fn new(options: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs an option");
            Self { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            let idx = (rng.next_u64() % self.options.len() as u64) as usize;
            self.options[idx].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + (rng.next_u64() % span) as i128) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128 - start as i128 + 1) as u128;
                    (start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.next_unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            let (start, end) = (*self.start(), *self.end());
            assert!(start <= end, "empty range strategy");
            start + rng.next_unit_f64() * (end - start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident . $i:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$i.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
    }
}

pub mod arbitrary {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one value from the full domain.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_unit_f64()
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct AnyStrategy<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`'s whole domain.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }
}

/// The common imports: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

/// Defines `#[test]` functions whose arguments are drawn from
/// strategies, re-running the body for each random case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ( ($cfg:expr)
      $( $(#[$meta:meta])* fn $name:ident ( $( $pat:pat in $strat:expr ),* $(,)? ) $body:block )*
    ) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            for __case in 0..u64::from(__config.cases) {
                let mut __rng =
                    $crate::test_runner::TestRng::for_case(stringify!($name), __case);
                $(
                    let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                )*
                $body
            }
        }
    )*};
}

/// Asserts a property over generated inputs (panics on failure, like
/// `assert!`, naming no minimised input — rerun to reproduce).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(, $($fmt:tt)+)?) => {
        assert!($cond $(, $($fmt)+)?)
    };
}

/// Equality assertion over generated inputs.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(, $($fmt:tt)+)?) => {
        assert_eq!($left, $right $(, $($fmt)+)?)
    };
}

/// Inequality assertion over generated inputs.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(, $($fmt:tt)+)?) => {
        assert_ne!($left, $right $(, $($fmt)+)?)
    };
}

/// Skips the current case when its inputs don't satisfy a precondition.
/// Expands to `continue` targeting the case loop, so it must appear in
/// the property body itself, not inside a nested loop or closure.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)+)?) => {
        if !($cond) {
            continue;
        }
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($s)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..10, f in 0.25f64..=0.75) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.25..=0.75).contains(&f));
        }

        #[test]
        fn tuples_and_maps_compose(
            (a, b) in (1u16..5, 2usize..7),
            doubled in (0u64..100).prop_map(|v| v * 2),
        ) {
            prop_assert!(a >= 1 && a < 5);
            prop_assert!(b >= 2 && b < 7);
            prop_assert_eq!(doubled % 2, 0);
        }

        #[test]
        fn assume_skips_cases(v in any::<u64>()) {
            prop_assume!(v % 2 == 0);
            prop_assert_eq!(v % 2, 0);
        }

        #[test]
        fn oneof_picks_each_arm(pick in prop_oneof![Just(1u8), Just(2u8)]) {
            prop_assert!(pick == 1 || pick == 2);
        }
    }

    #[test]
    fn test_rng_is_deterministic() {
        let mut a = crate::test_runner::TestRng::for_case("t", 0);
        let mut b = crate::test_runner::TestRng::for_case("t", 0);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
