//! Offline stand-in for `criterion`.
//!
//! Implements the benchmarking surface the epnet workspace uses —
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`] with
//! `sample_size` / `warm_up_time` / `measurement_time` / `throughput`,
//! [`Bencher::iter`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros — over a plain wall-clock runner. No statistical analysis,
//! HTML reports, or baseline comparison: each benchmark calibrates an
//! iteration count during warm-up, takes `sample_size` timed samples,
//! and prints the min / median / max time per iteration.
//!
//! Positional CLI arguments (as passed by `cargo bench -- <filter>`)
//! are substring filters on the full `group/name` benchmark id.

use std::marker::PhantomData;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measurement markers (only wall-clock exists here).
pub mod measurement {
    /// Wall-clock time measurement.
    #[derive(Debug, Clone, Copy)]
    pub struct WallTime;
}

/// Per-benchmark tuning knobs.
#[derive(Debug, Clone)]
struct BenchConfig {
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    throughput: Option<Throughput>,
}

impl Default for BenchConfig {
    fn default() -> Self {
        Self {
            sample_size: 10,
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(2),
            throughput: None,
        }
    }
}

/// Units processed per iteration, for derived rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Logical elements per iteration (reported as Kelem/s, Melem/s…).
    Elements(u64),
    /// Bytes per iteration (reported as KiB/s, MiB/s…).
    Bytes(u64),
}

/// Times the benchmark body for a runner-chosen iteration count.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` for the calibrated number of iterations, timing the
    /// whole batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// The benchmark harness entry point.
pub struct Criterion {
    filters: Vec<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { filters: Vec::new() }
    }
}

impl Criterion {
    /// A harness whose substring filters come from the positional CLI
    /// arguments (`cargo bench -- <filter>`); flags are ignored.
    pub fn from_args() -> Self {
        let filters = std::env::args()
            .skip(1)
            .filter(|a| !a.starts_with('-'))
            .collect();
        Self { filters }
    }

    fn selected(&self, id: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| id.contains(f.as_str()))
    }

    /// Runs a single benchmark with default tuning.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, f: F) -> &mut Self {
        let id = id.into();
        if self.selected(&id) {
            run_bench(&id, &BenchConfig::default(), f);
        }
        self
    }

    /// Opens a named group sharing tuning knobs across benchmarks.
    pub fn benchmark_group(
        &mut self,
        name: impl Into<String>,
    ) -> BenchmarkGroup<'_, measurement::WallTime> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            cfg: BenchConfig::default(),
            _measurement: PhantomData,
        }
    }
}

/// A group of benchmarks sharing a name prefix and tuning knobs.
pub struct BenchmarkGroup<'a, M = measurement::WallTime> {
    criterion: &'a mut Criterion,
    name: String,
    cfg: BenchConfig,
    _measurement: PhantomData<M>,
}

impl<M> BenchmarkGroup<'_, M> {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.cfg.sample_size = n;
        self
    }

    /// Sets the calibration/warm-up budget.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.cfg.warm_up = d;
        self
    }

    /// Sets the total measurement budget across samples.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.cfg.measurement = d;
        self
    }

    /// Declares per-iteration throughput for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.cfg.throughput = Some(t);
        self
    }

    /// Runs one benchmark under this group's tuning.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into());
        if self.criterion.selected(&full) {
            run_bench(&full, &self.cfg, f);
        }
        self
    }

    /// Ends the group (provided for API compatibility; dropping the
    /// group is equivalent).
    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(id: &str, cfg: &BenchConfig, mut f: F) {
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };

    // Warm-up doubles the batch size until one batch fills the warm-up
    // budget, which both warms caches and calibrates per-iter cost.
    let warm_start = Instant::now();
    loop {
        f(&mut b);
        if warm_start.elapsed() >= cfg.warm_up || b.iters >= 1 << 30 {
            break;
        }
        b.iters = b.iters.saturating_mul(2);
    }
    let per_iter_ns = (b.elapsed.as_nanos() / u128::from(b.iters)).max(1);

    // Size each sample so all samples together roughly fill the
    // measurement budget.
    let per_sample_ns = cfg.measurement.as_nanos() / cfg.sample_size as u128;
    let iters_per_sample = ((per_sample_ns / per_iter_ns).max(1)).min(u128::from(u64::MAX)) as u64;

    let mut samples_ns: Vec<u128> = Vec::with_capacity(cfg.sample_size);
    for _ in 0..cfg.sample_size {
        b.iters = iters_per_sample;
        f(&mut b);
        samples_ns.push(b.elapsed.as_nanos() / u128::from(iters_per_sample));
    }
    samples_ns.sort_unstable();
    let min = samples_ns[0];
    let median = samples_ns[samples_ns.len() / 2];
    let max = samples_ns[samples_ns.len() - 1];

    print!(
        "{id:<48} time: [{} {} {}]",
        fmt_ns(min),
        fmt_ns(median),
        fmt_ns(max)
    );
    if let Some(t) = cfg.throughput {
        let (units, label) = match t {
            Throughput::Elements(n) => (n, "elem/s"),
            Throughput::Bytes(n) => (n, "B/s"),
        };
        let rate = units as f64 * 1e9 / median as f64;
        print!("  thrpt: {} {label}", fmt_rate(rate));
    }
    println!();
}

fn fmt_ns(ns: u128) -> String {
    let ns = ns as f64;
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn fmt_rate(rate: f64) -> String {
    if rate >= 1e9 {
        format!("{:.3}G", rate / 1e9)
    } else if rate >= 1e6 {
        format!("{:.3}M", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.3}K", rate / 1e3)
    } else {
        format!("{rate:.1}")
    }
}

/// Bundles benchmark functions into one group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Generates `main` running the listed groups with CLI filters.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::from_args();
            $( $group(&mut c); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_body() {
        let mut c = Criterion::default();
        let mut runs = 0u64;
        let mut g = c.benchmark_group("t");
        g.sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2));
        g.throughput(Throughput::Elements(1));
        g.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        g.finish();
        assert!(runs > 0, "benchmark body never executed");
    }

    #[test]
    fn filters_skip_unmatched() {
        let mut c = Criterion {
            filters: vec!["only_this".to_owned()],
        };
        let mut ran = false;
        c.bench_function("something_else", |b| {
            b.iter(|| ran = true);
        });
        assert!(!ran, "filtered-out benchmark must not run");
    }
}
