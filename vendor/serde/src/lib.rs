//! Offline stand-in for `serde`.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors a minimal serialization framework with the same
//! crate/trait/derive names the real serde exposes. Instead of serde's
//! visitor-based zero-copy data model, everything funnels through one
//! self-describing [`Value`] tree (the JSON data model plus exact
//! integers); `serde_json` (also vendored) renders and parses it.
//!
//! Supported surface — exactly what the epnet workspace uses:
//! `#[derive(Serialize, Deserialize)]` on non-generic structs and
//! enums, and implementations for the std types that appear in its
//! public result structs (integers, floats, bool, strings, `Option`,
//! `Vec`, fixed-size arrays, tuples, and `BTreeMap<String, _>`).

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

use std::collections::BTreeMap;
use std::fmt;

/// The self-describing data model every serializable type lowers into.
///
/// Integers keep exact 64-bit representations so picosecond timestamps
/// and byte counters survive a round trip bit-for-bit.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON booleans.
    Bool(bool),
    /// Exact unsigned integers.
    U64(u64),
    /// Exact signed integers.
    I64(i64),
    /// Floating-point numbers.
    F64(f64),
    /// Strings.
    Str(String),
    /// Arrays.
    Seq(Vec<Value>),
    /// Objects, in insertion order.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Looks a key up in a [`Value::Map`].
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements of a [`Value::Seq`].
    pub fn as_seq(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// A single-entry map, the encoding of a data-carrying enum variant.
    pub fn as_variant(&self) -> Option<(&str, &Value)> {
        match self {
            Value::Map(entries) if entries.len() == 1 => {
                Some((entries[0].0.as_str(), &entries[0].1))
            }
            _ => None,
        }
    }

    /// The string payload of a [`Value::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// A numeric value widened to `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::U64(n) => Some(*n as f64),
            Value::I64(n) => Some(*n as f64),
            Value::F64(n) => Some(*n),
            _ => None,
        }
    }

    /// A numeric value as an exact `u64`, if representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(n) => Some(*n),
            Value::I64(n) if *n >= 0 => Some(*n as u64),
            Value::F64(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// A numeric value as an exact `i64`, if representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(n) => Some(*n),
            Value::U64(n) if *n <= i64::MAX as u64 => Some(*n as i64),
            Value::F64(n) if n.fract() == 0.0 && *n >= i64::MIN as f64 && *n <= i64::MAX as f64 => {
                Some(*n as i64)
            }
            _ => None,
        }
    }
}

/// Deserialization failure: a type mismatch or missing field.
#[derive(Debug, Clone)]
pub struct DeError(String);

impl DeError {
    /// An arbitrary-message error.
    pub fn msg(m: impl Into<String>) -> Self {
        Self(m.into())
    }

    /// A missing-field error.
    pub fn missing(field: &str) -> Self {
        Self(format!("missing field `{field}`"))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that lower into a [`Value`].
pub trait Serialize {
    /// The value-model encoding of `self`.
    fn to_value(&self) -> Value;
}

/// Types that rebuild from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self`, or explains why the value doesn't fit.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------
// Serialize implementations
// ---------------------------------------------------------------------

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
    )*};
}
ser_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::I64(*self as i64) }
        }
    )*};
}
ser_int!(i8, i16, i32, i64, isize);

impl Serialize for u128 {
    fn to_value(&self) -> Value {
        assert!(
            *self <= u64::MAX as u128,
            "u128 value exceeds the vendored serde's 64-bit integer model"
        );
        Value::U64(*self as u64)
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![self.0.to_value(), self.1.to_value(), self.2.to_value()])
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Map(self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect())
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

// ---------------------------------------------------------------------
// Deserialize implementations
// ---------------------------------------------------------------------

macro_rules! de_uint {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v
                    .as_u64()
                    .ok_or_else(|| DeError::msg(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(n)
                    .map_err(|_| DeError::msg(concat!("out of range for ", stringify!($t))))
            }
        }
    )*};
}
de_uint!(u8, u16, u32, u64, usize);

macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v
                    .as_i64()
                    .ok_or_else(|| DeError::msg(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(n)
                    .map_err(|_| DeError::msg(concat!("out of range for ", stringify!($t))))
            }
        }
    )*};
}
de_int!(i8, i16, i32, i64, isize);

impl Deserialize for u128 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_u64()
            .map(u128::from)
            .ok_or_else(|| DeError::msg("expected u128"))
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64().ok_or_else(|| DeError::msg("expected f64"))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64()
            .map(|n| n as f32)
            .ok_or_else(|| DeError::msg("expected f32"))
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::msg("expected bool")),
        }
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| DeError::msg("expected string"))
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_seq()
            .ok_or_else(|| DeError::msg("expected sequence"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Deserialize::from_value(v)?;
        items
            .try_into()
            .map_err(|_| DeError::msg("wrong array length"))
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = v.as_seq().ok_or_else(|| DeError::msg("expected pair"))?;
        if s.len() != 2 {
            return Err(DeError::msg("expected a 2-element sequence"));
        }
        Ok((A::from_value(&s[0])?, B::from_value(&s[1])?))
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = v.as_seq().ok_or_else(|| DeError::msg("expected triple"))?;
        if s.len() != 3 {
            return Err(DeError::msg("expected a 3-element sequence"));
        }
        Ok((A::from_value(&s[0])?, B::from_value(&s[1])?, C::from_value(&s[2])?))
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            _ => Err(DeError::msg("expected map")),
        }
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}
