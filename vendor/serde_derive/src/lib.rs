//! Offline stand-in for `serde_derive`.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors a minimal serde implementation (see
//! `vendor/serde`). This proc-macro crate derives that implementation's
//! `Serialize`/`Deserialize` traits for the shapes the workspace
//! actually uses: unit/tuple/named structs and enums with unit, tuple,
//! and struct variants. Generics and `#[serde(...)]` attributes are not
//! supported (the workspace uses neither).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed field list of a struct or enum variant.
enum Fields {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

enum Body {
    Struct(Fields),
    Enum(Vec<(String, Fields)>),
}

struct Input {
    name: String,
    body: Body,
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let input = parse(input);
    gen_serialize(&input).parse().expect("generated impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let input = parse(input);
    gen_deserialize(&input).parse().expect("generated impl parses")
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

type Iter = std::iter::Peekable<proc_macro::token_stream::IntoIter>;

/// Skips `#[...]` attributes and `pub`/`pub(...)` visibility.
fn skip_attrs_and_vis(it: &mut Iter) {
    loop {
        match it.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                it.next();
                it.next(); // the bracketed attribute body
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                it.next();
                if let Some(TokenTree::Group(g)) = it.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        it.next();
                    }
                }
            }
            _ => break,
        }
    }
}

fn expect_ident(it: &mut Iter, what: &str) -> String {
    match it.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        t => panic!("expected {what}, found {t:?}"),
    }
}

/// Parses the names out of a `{ field: Type, ... }` body.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut it = stream.into_iter().peekable();
    let mut names = Vec::new();
    loop {
        skip_attrs_and_vis(&mut it);
        let Some(TokenTree::Ident(_)) = it.peek() else { break };
        names.push(expect_ident(&mut it, "field name"));
        match it.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            t => panic!("expected ':' after field name, found {t:?}"),
        }
        // Skip the type: consume until a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        loop {
            match it.peek() {
                None => break,
                Some(TokenTree::Punct(p)) => {
                    let c = p.as_char();
                    if c == '<' {
                        depth += 1;
                    } else if c == '>' {
                        depth -= 1;
                    } else if c == ',' && depth == 0 {
                        it.next();
                        break;
                    }
                    it.next();
                }
                Some(_) => {
                    it.next();
                }
            }
        }
    }
    names
}

/// Counts the fields of a `( Type, ... )` body.
fn parse_tuple_arity(stream: TokenStream) -> usize {
    let mut depth = 0i32;
    let mut count = 0usize;
    let mut in_segment = false;
    for t in stream {
        match t {
            TokenTree::Punct(p) => {
                let c = p.as_char();
                if c == '<' {
                    depth += 1;
                } else if c == '>' {
                    depth -= 1;
                } else if c == ',' && depth == 0 {
                    in_segment = false;
                    continue;
                }
                if !in_segment {
                    in_segment = true;
                    count += 1;
                }
            }
            _ => {
                if !in_segment {
                    in_segment = true;
                    count += 1;
                }
            }
        }
    }
    count
}

fn parse(input: TokenStream) -> Input {
    let mut it = input.into_iter().peekable();
    skip_attrs_and_vis(&mut it);
    let kw = expect_ident(&mut it, "`struct` or `enum`");
    let name = expect_ident(&mut it, "type name");
    if let Some(TokenTree::Punct(p)) = it.peek() {
        if p.as_char() == '<' {
            panic!("the vendored serde_derive does not support generic types ({name})");
        }
    }
    let body = match kw.as_str() {
        "struct" => match it.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Struct(Fields::Named(parse_named_fields(g.stream())))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Body::Struct(Fields::Tuple(parse_tuple_arity(g.stream())))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Body::Struct(Fields::Unit),
            t => panic!("unexpected struct body: {t:?}"),
        },
        "enum" => {
            let Some(TokenTree::Group(g)) = it.next() else {
                panic!("expected enum body");
            };
            let mut vit = g.stream().into_iter().peekable();
            let mut variants = Vec::new();
            loop {
                skip_attrs_and_vis(&mut vit);
                let Some(TokenTree::Ident(_)) = vit.peek() else { break };
                let vname = expect_ident(&mut vit, "variant name");
                let fields = match vit.peek() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        let f = Fields::Named(parse_named_fields(g.stream()));
                        vit.next();
                        f
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        let f = Fields::Tuple(parse_tuple_arity(g.stream()));
                        vit.next();
                        f
                    }
                    _ => Fields::Unit,
                };
                // Skip a possible `= discriminant` then the trailing comma.
                loop {
                    match vit.peek() {
                        Some(TokenTree::Punct(p)) if p.as_char() == ',' => {
                            vit.next();
                            break;
                        }
                        None => break,
                        _ => {
                            vit.next();
                        }
                    }
                }
                variants.push((vname, fields));
            }
            Body::Enum(variants)
        }
        other => panic!("cannot derive for `{other}` items"),
    };
    Input { name, body }
}

// ---------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.body {
        Body::Struct(Fields::Unit) => "serde::Value::Null".to_string(),
        Body::Struct(Fields::Named(fields)) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(\"{f}\".to_string(), serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!("serde::Value::Map(::std::vec![{}])", entries.join(", "))
        }
        Body::Struct(Fields::Tuple(1)) => "serde::Serialize::to_value(&self.0)".to_string(),
        Body::Struct(Fields::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("serde::Value::Seq(::std::vec![{}])", items.join(", "))
        }
        Body::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, fields)| match fields {
                    Fields::Unit => format!(
                        "{name}::{v} => serde::Value::Str(\"{v}\".to_string()),"
                    ),
                    Fields::Tuple(1) => format!(
                        "{name}::{v}(__f0) => serde::Value::Map(::std::vec![(\"{v}\".to_string(), serde::Serialize::to_value(__f0))]),"
                    ),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("serde::Serialize::to_value(__f{i})"))
                            .collect();
                        format!(
                            "{name}::{v}({}) => serde::Value::Map(::std::vec![(\"{v}\".to_string(), serde::Value::Seq(::std::vec![{}]))]),",
                            binds.join(", "),
                            items.join(", ")
                        )
                    }
                    Fields::Named(fs) => {
                        let binds = fs.join(", ");
                        let items: Vec<String> = fs
                            .iter()
                            .map(|f| {
                                format!(
                                    "(\"{f}\".to_string(), serde::Serialize::to_value({f}))"
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{v} {{ {binds} }} => serde::Value::Map(::std::vec![(\"{v}\".to_string(), serde::Value::Map(::std::vec![{}]))]),",
                            items.join(", ")
                        )
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl serde::Serialize for {name} {{\n    fn to_value(&self) -> serde::Value {{ {body} }}\n}}"
    )
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.body {
        Body::Struct(Fields::Unit) => "::std::result::Result::Ok(Self)".to_string(),
        Body::Struct(Fields::Named(fields)) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: serde::Deserialize::from_value(__v.get(\"{f}\").ok_or_else(|| serde::DeError::missing(\"{name}.{f}\"))?)?,"
                    )
                })
                .collect();
            format!(
                "::std::result::Result::Ok(Self {{ {} }})",
                entries.join(" ")
            )
        }
        Body::Struct(Fields::Tuple(1)) => {
            "::std::result::Result::Ok(Self(serde::Deserialize::from_value(__v)?))".to_string()
        }
        Body::Struct(Fields::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("serde::Deserialize::from_value(&__s[{i}])?"))
                .collect();
            format!(
                "let __s = __v.as_seq().ok_or_else(|| serde::DeError::msg(\"expected a sequence for {name}\"))?;\n        if __s.len() != {n} {{ return ::std::result::Result::Err(serde::DeError::msg(\"wrong arity for {name}\")); }}\n        ::std::result::Result::Ok(Self({}))",
                items.join(", ")
            )
        }
        Body::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|(_, f)| matches!(f, Fields::Unit))
                .map(|(v, _)| {
                    format!("\"{v}\" => return ::std::result::Result::Ok({name}::{v}),")
                })
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|(v, f)| match f {
                    Fields::Unit => None,
                    Fields::Tuple(1) => Some(format!(
                        "\"{v}\" => return ::std::result::Result::Ok({name}::{v}(serde::Deserialize::from_value(__inner)?)),"
                    )),
                    Fields::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("serde::Deserialize::from_value(&__s[{i}])?"))
                            .collect();
                        Some(format!(
                            "\"{v}\" => {{ let __s = __inner.as_seq().ok_or_else(|| serde::DeError::msg(\"expected a sequence for {name}::{v}\"))?; return ::std::result::Result::Ok({name}::{v}({})); }}",
                            items.join(", ")
                        ))
                    }
                    Fields::Named(fs) => {
                        let items: Vec<String> = fs
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: serde::Deserialize::from_value(__inner.get(\"{f}\").ok_or_else(|| serde::DeError::missing(\"{name}::{v}.{f}\"))?)?,"
                                )
                            })
                            .collect();
                        Some(format!(
                            "\"{v}\" => return ::std::result::Result::Ok({name}::{v} {{ {} }}),",
                            items.join(" ")
                        ))
                    }
                })
                .collect();
            format!(
                "if let serde::Value::Str(__s) = __v {{ match __s.as_str() {{ {} _ => {{}} }} }}\n        if let ::std::option::Option::Some((__k, __inner)) = __v.as_variant() {{ match __k {{ {} _ => {{}} }} }}\n        ::std::result::Result::Err(serde::DeError::msg(\"unrecognized variant for {name}\"))",
                unit_arms.join(" "),
                data_arms.join(" ")
            )
        }
    };
    format!(
        "impl serde::Deserialize for {name} {{\n    fn from_value(__v: &serde::Value) -> ::std::result::Result<Self, serde::DeError> {{\n        {body}\n    }}\n}}"
    )
}
