//! Offline stand-in for `rand` 0.8.
//!
//! Implements the slice of the rand API the epnet workspace uses —
//! seeded [`rngs::SmallRng`]/[`rngs::StdRng`], [`Rng::gen_range`] /
//! [`Rng::gen_bool`] / [`Rng::gen`], and [`seq::SliceRandom::shuffle`]
//! — over a xoshiro256++ core seeded by SplitMix64. Streams are
//! deterministic for a given seed (the workspace's reproducibility
//! requirement) but differ from the real rand crate's, so regenerated
//! simulation numbers shift while every qualitative result holds.

use std::ops::Range;

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from `seed`. Identical seeds give identical
    /// streams.
    fn seed_from_u64(seed: u64) -> Self;

    /// A generator seeded from the system clock — only as good as this
    /// offline stand-in needs (never used on a reproducibility path).
    fn from_entropy() -> Self {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9E3779B97F4A7C15);
        Self::seed_from_u64(nanos)
    }
}

/// High-level sampling helpers, blanket-implemented for every core.
pub trait Rng: RngCore {
    /// A uniform sample from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "probability out of range");
        unit_f64(self.next_u64()) < p
    }

    /// A sample of the full domain of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Maps 64 random bits onto `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types samplable over their whole domain via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty gen_range");
                let span = (end as u128) - (start as u128) + 1;
                start + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}
range_int!(u8, u16, u32, u64, usize);

macro_rules! range_signed {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
    )*};
}
range_signed!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty gen_range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty gen_range");
        start + unit_f64(rng.next_u64()) * (end - start)
    }
}

/// The bundled generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — small, fast, and deterministic from a 64-bit seed.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        fn from_splitmix(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            Self { s }
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self::from_splitmix(seed)
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Alias of [`SmallRng`] — cryptographic quality is irrelevant for
    /// the workspace's seeded workload generation.
    pub type StdRng = SmallRng;
}

/// Slice helpers.
pub mod seq {
    use super::RngCore;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle, deterministic for a given generator
        /// state.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((rng.next_u64() % self.len() as u64) as usize)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn streams_are_deterministic() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_hit_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: u32 = rng.gen_range(3..10);
            assert!((3..10).contains(&v));
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle should move something");
    }
}
