//! `EPNET_PAR` cross-check: the sharded parallel engine is an
//! execution detail, never a behavior. Every configuration must
//! serialize a byte-identical `SimReport` whether the run executes on
//! the serial event loop (`EPNET_PAR` unset / `off`) or on 1, 2, 4, or
//! 8 coordinator-ordered worker shards — and that identity must hold
//! composed with every other mode switch (`EPNET_SCHED=heap`,
//! `EPNET_ROUTES=dynamic`, `EPNET_EPOCH=sweep`), since the parallel
//! coordinator replays those same code paths per shard.
//!
//! The workload is bursty at low offered load with the dynamic-topology
//! extension on: epoch rate transitions, power-off, and reactivation
//! all cross the coordinator's window barriers, which is exactly where
//! a lookahead or replay-ordering bug would diverge the reports.
//!
//! The simulation model is its own axis (`EPNET_MODEL=hybrid` composed
//! with every mode and width): the coordinator makes all flow regime
//! decisions at phase barriers over gathered shard state, so the
//! hybrid engine owes the same byte-identity the packet engine does.

use epnet::prelude::*;
use epnet::sim::{MemorySink, TraceCategory, Tracer};
use epnet_telemetry::{parse_jsonl, validate_jsonl, TraceRecord};
use proptest::prelude::*;
use std::sync::Mutex;

/// Serializes the env-twiddling tests in this binary — `EPNET_PAR` and
/// the mode switches are process-global.
static ENV_LOCK: Mutex<()> = Mutex::new(());

/// Worker widths the matrix proves byte-identical to serial.
const WIDTHS: [&str; 4] = ["1", "2", "4", "8"];

/// Reference-mode switches composed with the parallel axis. Each entry
/// is (label, env var, reference value); `None` runs the defaults.
/// `EPNET_PAR_LOOKAHEAD=global` selects the legacy fabric-wide window
/// bound instead of the pairwise matrix — different window shapes,
/// same bytes.
const MODES: [Option<(&str, &str)>; 5] = [
    None,
    Some(("EPNET_SCHED", "heap")),
    Some(("EPNET_ROUTES", "dynamic")),
    Some(("EPNET_EPOCH", "sweep")),
    Some(("EPNET_PAR_LOOKAHEAD", "global")),
];

/// One run on an FBFLY(c, k, n) with the dynamic-topology extension
/// on, serialized. Mirrors `epoch_modes.rs` so the two determinism
/// suites exercise the same reference workload.
fn run_case(c: u16, k: u16, n: usize, load: f64, seed: u64) -> String {
    let fabric = FlattenedButterfly::new(c, k, n)
        .expect("valid shape")
        .build_fabric();
    let config = SimConfig::builder().build();
    let horizon = SimTime::from_ms(1);
    let src = UniformRandom::builder(fabric.num_hosts() as u32)
        .offered_load(load)
        .seed(seed)
        .horizon(horizon)
        .build();
    let mut sim = Simulator::new(fabric.clone(), config, src);
    sim.enable_dynamic_topology(DynamicTopology::new(
        &fabric,
        DynamicTopologyConfig::default(),
    ));
    let report = sim.run_until(horizon);
    serde_json::to_string_pretty(&report).expect("report serializes")
}

/// Runs `f` serially, then once per worker width, asserting byte
/// identity against the serial report each time.
fn assert_widths_agree(label: &str, f: impl Fn() -> String) {
    std::env::remove_var("EPNET_PAR");
    let serial = f();
    for width in WIDTHS {
        std::env::set_var("EPNET_PAR", width);
        let parallel = f();
        std::env::remove_var("EPNET_PAR");
        assert_eq!(
            serial, parallel,
            "serialized report differs between serial and EPNET_PAR={width} for {label}"
        );
    }
}

/// The headline matrix: widths {1, 2, 4, 8} × reference modes
/// {defaults, sched, routes, epoch, global lookahead} on the canonical
/// FBFLY(2, 8, 2) bursty run with dynamic topology.
#[test]
fn parallel_reports_are_byte_identical_across_widths_and_modes() {
    let _guard = ENV_LOCK.lock().unwrap();
    for mode in MODES {
        let label = match mode {
            Some((var, val)) => {
                std::env::set_var(var, val);
                format!("{var}={val}")
            }
            None => "defaults".to_string(),
        };
        assert_widths_agree(&label, || run_case(2, 8, 2, 0.08, 11));
        if let Some((var, _)) = mode {
            std::env::remove_var(var);
        }
    }
}

/// Simulation models composed with the parallel axis. `hybrid` makes
/// the coordinator absorb large messages into fluid flows at workload
/// phases and advance/demote them at epoch barriers — the regime
/// decisions all read gathered shard state, so the reports must stay
/// byte-identical to the serial hybrid engine.
const MODELS: [&str; 2] = ["packet", "hybrid"];

/// Flow-heavy variant of the canonical run: 256 KiB messages (4× the
/// hybrid absorption threshold) on the same FBFLY dynamic topology, so
/// `EPNET_MODEL=hybrid` absorbs flows at coordinator workload phases,
/// advances them at epoch ticks, and demotes them back into the packet
/// path when dynamic-topology drains puncture their steadiness gate.
fn run_flow_case(c: u16, k: u16, n: usize, load: f64, seed: u64) -> (String, SimReport) {
    let fabric = FlattenedButterfly::new(c, k, n)
        .expect("valid shape")
        .build_fabric();
    let config = SimConfig::builder().build();
    let horizon = SimTime::from_ms(1);
    let src = UniformRandom::builder(fabric.num_hosts() as u32)
        .offered_load(load)
        .message_bytes(256 * 1024)
        .seed(seed)
        .horizon(horizon)
        .build();
    let mut sim = Simulator::new(fabric.clone(), config, src);
    sim.enable_dynamic_topology(DynamicTopology::new(
        &fabric,
        DynamicTopologyConfig::default(),
    ));
    let report = sim.run_until(horizon);
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    (json, report)
}

/// The model axis: {packet, hybrid} × widths {1, 2, 4, 8} × reference
/// modes on the flow-heavy FBFLY(2, 8, 2) run. The hybrid serial
/// reference must actually exercise the fluid regime (absorptions and
/// demotions both nonzero) or the axis would vacuously pass.
#[test]
fn model_axis_reports_are_byte_identical_across_widths_and_modes() {
    let _guard = ENV_LOCK.lock().unwrap();
    for model in MODELS {
        std::env::set_var("EPNET_MODEL", model);
        for mode in MODES {
            let label = match mode {
                Some((var, val)) => {
                    std::env::set_var(var, val);
                    format!("EPNET_MODEL={model} {var}={val}")
                }
                None => format!("EPNET_MODEL={model}"),
            };
            std::env::remove_var("EPNET_PAR");
            let (serial, serial_report) = run_flow_case(2, 8, 2, 0.3, 17);
            if model == "hybrid" {
                let absorbed = serial_report.diagnostics.get("flows_absorbed");
                assert!(
                    absorbed.is_some_and(|&a| a > 0),
                    "flow-heavy hybrid reference absorbed no flows for {label}"
                );
                let demoted = serial_report.diagnostics.get("flows_demoted");
                assert!(
                    demoted.is_some_and(|&d| d > 0),
                    "flow-heavy hybrid reference demoted no flows for {label}"
                );
            }
            for width in WIDTHS {
                std::env::set_var("EPNET_PAR", width);
                let (parallel, parallel_report) = run_flow_case(2, 8, 2, 0.3, 17);
                std::env::remove_var("EPNET_PAR");
                assert_eq!(
                    serial, parallel,
                    "serialized report differs between serial and EPNET_PAR={width} for {label}"
                );
                assert_eq!(
                    serial_report.diagnostics.get("flows_absorbed"),
                    parallel_report.diagnostics.get("flows_absorbed"),
                    "flow absorption diverged at EPNET_PAR={width} for {label}"
                );
                assert_eq!(
                    serial_report.diagnostics.get("flows_demoted"),
                    parallel_report.diagnostics.get("flows_demoted"),
                    "flow demotion diverged at EPNET_PAR={width} for {label}"
                );
            }
            if let Some((var, _)) = mode {
                std::env::remove_var(var);
            }
        }
    }
    std::env::remove_var("EPNET_MODEL");
}

/// The canonical bursty run with a tracer installed under `mask`;
/// returns the serialized report, the trace text, and the in-memory
/// report (for its `diagnostics`).
fn run_traced(mask: u32) -> (String, String, SimReport) {
    let fabric = FlattenedButterfly::new(2, 8, 2)
        .expect("valid shape")
        .build_fabric();
    let horizon = SimTime::from_ms(1);
    let src = UniformRandom::builder(fabric.num_hosts() as u32)
        .offered_load(0.08)
        .seed(11)
        .horizon(horizon)
        .build();
    let mut sim = Simulator::new(fabric.clone(), SimConfig::builder().build(), src);
    sim.enable_dynamic_topology(DynamicTopology::new(
        &fabric,
        DynamicTopologyConfig::default(),
    ));
    let sink = MemorySink::new();
    sim.set_tracer(Tracer::new(sink.clone(), mask));
    let report = sim.run_until(horizon);
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    (json, sink.contents(), report)
}

/// Strips the execution-shape categories (`routes`: wall-clock build
/// times; `parallel`: exists only under `EPNET_PAR`) — the lines the
/// serial↔parallel byte-identity contract covers.
fn behavior_lines(trace: &str) -> Vec<&str> {
    trace
        .lines()
        .filter(|l| !l.contains("\"cat\":\"routes\"") && !l.contains("\"cat\":\"parallel\""))
        .collect()
}

/// Traced parallel runs: the behavior categories stay line-identical
/// to serial, `parallel` window records appear iff the category is
/// masked in, the merged trace stays schema-valid and time-monotone,
/// and the per-window counters sum to the engine's own diagnostics.
#[test]
fn traced_parallel_runs_gate_window_records_behind_the_mask() {
    let _guard = ENV_LOCK.lock().unwrap();
    std::env::remove_var("EPNET_PAR");
    let (serial_json, serial_trace, _) = run_traced(TraceCategory::ALL_MASK);
    assert!(
        !serial_trace.contains("\"cat\":\"parallel\""),
        "the serial engine must not emit parallel records"
    );

    std::env::set_var("EPNET_PAR", "4");
    let (par_json, par_trace, par_report) = run_traced(TraceCategory::ALL_MASK);
    let masked = TraceCategory::ALL_MASK & !TraceCategory::Parallel.bit();
    let (par_masked_json, par_masked_trace, _) = run_traced(masked);
    std::env::remove_var("EPNET_PAR");

    // The report contract is untouched by the new category, masked in
    // or out.
    assert_eq!(serial_json, par_json);
    assert_eq!(serial_json, par_masked_json);

    // Behavior categories are line-identical across all three runs;
    // the masked run writes no parallel lines at all.
    assert_eq!(behavior_lines(&serial_trace), behavior_lines(&par_trace));
    assert_eq!(
        behavior_lines(&serial_trace),
        behavior_lines(&par_masked_trace)
    );
    assert!(
        !par_masked_trace.contains("\"cat\":\"parallel\""),
        "masked-out category must not be written"
    );

    // The full parallel trace is schema-valid, time-monotone, and its
    // window records agree with the engine's diagnostics counters.
    let stats = validate_jsonl(&par_trace).expect("merged parallel trace is schema-valid");
    let windows = stats.count(TraceCategory::Parallel) as u64;
    assert!(windows > 0, "a width-4 traced run must record windows");
    assert_eq!(par_report.diagnostics.get("par_windows"), Some(&windows));
    let records = parse_jsonl(&par_trace).expect("parses");
    let (mut events, mut replays, mut batches, mut crossings) = (0u64, 0u64, 0u64, 0u64);
    let mut last = 0u64;
    for r in &records {
        assert!(r.at_ps() >= last, "merged trace went backwards in time");
        last = r.at_ps();
        if let TraceRecord::Parallel {
            at_ps,
            start_ps,
            shards,
            events: ev,
            replay_events,
            cross_batches,
            cross_events,
        } = r
        {
            assert!(start_ps <= at_ps, "window closes after it opens");
            assert!((1..=4).contains(shards), "touched shards within width");
            events += ev;
            replays += replay_events;
            batches += cross_batches;
            crossings += cross_events;
        }
    }
    assert_eq!(
        par_report.diagnostics.get("par_window_events"),
        Some(&events)
    );
    assert_eq!(
        par_report.diagnostics.get("par_replay_events"),
        Some(&replays)
    );
    assert_eq!(
        par_report.diagnostics.get("par_cross_batches"),
        Some(&batches)
    );
    assert_eq!(
        par_report.diagnostics.get("par_cross_events"),
        Some(&crossings)
    );
}

/// `EPNET_PAR=off` must behave exactly like unset.
#[test]
fn par_off_is_the_serial_engine() {
    let _guard = ENV_LOCK.lock().unwrap();
    std::env::remove_var("EPNET_PAR");
    let serial = run_case(2, 4, 2, 0.1, 7);
    std::env::set_var("EPNET_PAR", "off");
    let off = run_case(2, 4, 2, 0.1, 7);
    std::env::remove_var("EPNET_PAR");
    assert_eq!(serial, off, "EPNET_PAR=off diverged from unset");
}

/// A run with an explicit `SimConfig`, returning the serialized report
/// plus the in-memory report — whose non-serialized `diagnostics` map
/// records which engine actually executed the run.
fn run_fallback_case(config: SimConfig, seed: u64) -> (String, SimReport) {
    let fabric = FlattenedButterfly::new(2, 4, 2)
        .expect("valid shape")
        .build_fabric();
    let horizon = SimTime::from_us(300);
    let src = UniformRandom::builder(fabric.num_hosts() as u32)
        .offered_load(0.1)
        .seed(seed)
        .horizon(horizon)
        .build();
    let mut sim = Simulator::new(fabric.clone(), config, src);
    sim.enable_dynamic_topology(DynamicTopology::new(
        &fabric,
        DynamicTopologyConfig::default(),
    ));
    let report = sim.run_until(horizon);
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    (json, report)
}

/// Asserts that `config` makes the parallel engine fall back to the
/// serial loop: report bytes equal at every width, and the run is
/// flagged `par_fallback_serial = 1` in the diagnostics.
fn assert_falls_back(label: &str, config: &SimConfig) {
    std::env::remove_var("EPNET_PAR");
    let (serial, serial_report) = run_fallback_case(config.clone(), 13);
    assert_eq!(
        serial_report.diagnostics.get("par_fallback_serial"),
        Some(&0),
        "serial run must not set the fallback flag for {label}"
    );
    for width in WIDTHS {
        std::env::set_var("EPNET_PAR", width);
        let (parallel, parallel_report) = run_fallback_case(config.clone(), 13);
        std::env::remove_var("EPNET_PAR");
        assert_eq!(
            serial, parallel,
            "fallback report differs from serial at EPNET_PAR={width} for {label}"
        );
        assert_eq!(
            parallel_report.diagnostics.get("par_fallback_serial"),
            Some(&1),
            "EPNET_PAR={width} must report the serial fallback for {label}"
        );
        assert_eq!(
            parallel_report.diagnostics.get("par_windows"),
            Some(&0),
            "the fallback must not open coordinator windows for {label}"
        );
    }
}

/// Zero propagation delay collapses every lookahead bound to nothing:
/// no conservative window can make progress, so the engine must run
/// the serial loop and say so.
#[test]
fn zero_lookahead_falls_back_to_serial() {
    let _guard = ENV_LOCK.lock().unwrap();
    let config = SimConfig::builder()
        .propagation(SimTime::ZERO, SimTime::ZERO)
        .build();
    assert_falls_back("zero propagation", &config);
}

/// A zero reactivation floor means a power-gated switch can wake
/// instantaneously, which punctures the window bound the same way —
/// serial fallback, byte-identical report. The epoch is pinned
/// explicitly because `reactivation(t)` derives the default epoch from
/// `t`.
#[test]
fn zero_reactivation_floor_falls_back_to_serial() {
    let _guard = ENV_LOCK.lock().unwrap();
    let config = SimConfig::builder()
        .reactivation(SimTime::ZERO)
        .epoch(SimTime::from_us(10))
        .build();
    assert_falls_back("zero reactivation floor", &config);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Random small topologies, seeds, loads, and a random width —
    /// shapes where shards end up uneven (k not divisible by the
    /// width) are the interesting ones.
    #[test]
    fn parallel_agrees_on_random_topologies(
        seed in any::<u64>(),
        load in 0.02f64..0.5,
        c in 1u16..=3,
        k in 2u16..=6,
        n in 2usize..=3,
        width_pick in 0usize..4,
    ) {
        let _guard = ENV_LOCK.lock().unwrap();
        std::env::remove_var("EPNET_PAR");
        let serial = run_case(c, k, n, load, seed);
        let width = WIDTHS[width_pick];
        std::env::set_var("EPNET_PAR", width);
        let parallel = run_case(c, k, n, load, seed);
        std::env::remove_var("EPNET_PAR");
        prop_assert_eq!(
            serial, parallel,
            "reports diverged for fbfly({},{},{}) load={} seed={} width={}",
            c, k, n, load, seed, width
        );
    }

    /// The same random sweep under the hybrid model with flow-heavy
    /// loads: 256 KiB messages put nearly every injection through the
    /// absorb gate, and dynamic-topology churn forces demotions through
    /// the coordinator's mirrored-slot reconciliation.
    #[test]
    fn hybrid_parallel_agrees_on_flow_heavy_loads(
        seed in any::<u64>(),
        load in 0.05f64..0.4,
        c in 1u16..=3,
        k in 2u16..=6,
        n in 2usize..=3,
        width_pick in 0usize..4,
    ) {
        let _guard = ENV_LOCK.lock().unwrap();
        std::env::set_var("EPNET_MODEL", "hybrid");
        std::env::remove_var("EPNET_PAR");
        let (serial, _) = run_flow_case(c, k, n, load, seed);
        let width = WIDTHS[width_pick];
        std::env::set_var("EPNET_PAR", width);
        let (parallel, _) = run_flow_case(c, k, n, load, seed);
        std::env::remove_var("EPNET_PAR");
        std::env::remove_var("EPNET_MODEL");
        prop_assert_eq!(
            serial, parallel,
            "hybrid reports diverged for fbfly({},{},{}) load={} seed={} width={}",
            c, k, n, load, seed, width
        );
    }
}
