//! `EPNET_EPOCH` cross-check: the active-set epoch path is an
//! execution detail, never a behavior. Every configuration must
//! serialize a byte-identical `SimReport` whether epoch ticks sweep
//! all channels (`EPNET_EPOCH=sweep`, the reference) or visit only the
//! active set (the default).
//!
//! The workload is deliberately bursty at low offered load — long idle
//! gaps are exactly where the active-set path skips work, so any
//! resting-condition bug (skipping a channel whose decision would not
//! have been "hold", or retiring one with a queued byte) diverges the
//! reports here.

use epnet::prelude::*;
use proptest::prelude::*;
use std::sync::Mutex;

/// Serializes the env-twiddling tests in this binary — `EPNET_EPOCH`
/// is process-global.
static ENV_LOCK: Mutex<()> = Mutex::new(());

const POLICIES: [RatePolicy; 4] = [
    RatePolicy::HalveDouble,
    RatePolicy::JumpToExtremes,
    RatePolicy::Hysteresis {
        low: 0.25,
        high: 0.75,
    },
    RatePolicy::LaneAware,
];

const CONTROLS: [ControlMode; 3] = [
    ControlMode::AlwaysFull,
    ControlMode::IndependentChannel,
    ControlMode::PairedLink,
];

const STRATEGIES: [ReactivationStrategy; 2] = [
    ReactivationStrategy::RouteAround,
    ReactivationStrategy::DrainFirst,
];

/// One run on a small FBFLY with the dynamic-topology extension on
/// (its power-off/reactivate transitions exercise the incremental
/// asymmetry counter and the F_OFF resting exemption), serialized.
fn run_serialized(
    control: ControlMode,
    policy: RatePolicy,
    strategy: ReactivationStrategy,
    load: f64,
    seed: u64,
) -> String {
    let fabric = FlattenedButterfly::new(2, 8, 2)
        .expect("valid shape")
        .build_fabric();
    let mut b = SimConfig::builder();
    b.control(control)
        .policy(policy)
        .reactivation_strategy(strategy);
    let config = b.build();
    let horizon = SimTime::from_ms(1);
    let src = UniformRandom::builder(fabric.num_hosts() as u32)
        .offered_load(load)
        .seed(seed)
        .horizon(horizon)
        .build();
    let mut sim = Simulator::new(fabric.clone(), config, src);
    sim.enable_dynamic_topology(DynamicTopology::new(
        &fabric,
        DynamicTopologyConfig::default(),
    ));
    let report = sim.run_until(horizon);
    serde_json::to_string_pretty(&report).expect("report serializes")
}

/// Runs `f` once per `EPNET_EPOCH` mode and asserts byte identity.
fn assert_modes_agree(label: &str, f: impl Fn() -> String) {
    std::env::set_var("EPNET_EPOCH", "sweep");
    let swept = f();
    std::env::set_var("EPNET_EPOCH", "active");
    let active = f();
    std::env::remove_var("EPNET_EPOCH");
    assert_eq!(
        swept, active,
        "serialized report differs between epoch modes for {label}"
    );
}

/// The full configuration matrix: every control mode × rate policy ×
/// reactivation strategy, low bursty load, dynamic topology enabled.
#[test]
fn sweep_and_active_set_reports_are_byte_identical_across_the_matrix() {
    let _guard = ENV_LOCK.lock().unwrap();
    for control in CONTROLS {
        for policy in POLICIES {
            for strategy in STRATEGIES {
                let label = format!("{control:?}/{policy:?}/{strategy:?}");
                assert_modes_agree(&label, || {
                    run_serialized(control, policy, strategy, 0.08, 11)
                });
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random seeds and loads — including loads high enough that most
    /// channels stay permanently active — through a random slice of
    /// the matrix.
    #[test]
    fn sweep_and_active_set_agree_on_random_workloads(
        seed in any::<u64>(),
        load in 0.02f64..0.7,
        control_pick in 0usize..3,
        policy_pick in 0usize..4,
        strategy_pick in 0usize..2,
    ) {
        let _guard = ENV_LOCK.lock().unwrap();
        let control = CONTROLS[control_pick];
        let policy = POLICIES[policy_pick];
        let strategy = STRATEGIES[strategy_pick];
        std::env::set_var("EPNET_EPOCH", "sweep");
        let swept = run_serialized(control, policy, strategy, load, seed);
        std::env::set_var("EPNET_EPOCH", "active");
        let active = run_serialized(control, policy, strategy, load, seed);
        std::env::remove_var("EPNET_EPOCH");
        prop_assert_eq!(
            swept, active,
            "epoch modes diverged for {:?}/{:?}/{:?} load={} seed={}",
            control, policy, strategy, load, seed
        );
    }
}
