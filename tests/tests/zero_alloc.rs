//! Zero-allocation steady state: after warmup, the engine must serve
//! (almost) every event from recycled storage — packet arena slots,
//! message records, pooled credit buffers, per-port queues, the
//! workload future-list, and the calendar queue's bucket pool.
//!
//! This lives in its own integration-test binary because it installs a
//! process-wide counting allocator; sharing a binary with unrelated
//! tests would pollute the counters (cargo runs tests in parallel
//! threads within one binary).

use epnet::sim::{SimModel, SimTime};
use epnet_bench::scalebench::{self, AllocMeter, AllocWindow, ScalePoint, ScaleTopo};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static LIVE: AtomicU64 = AtomicU64::new(0);
static PEAK: AtomicU64 = AtomicU64::new(0);
static WINDOW_BASE: AtomicU64 = AtomicU64::new(0);

/// `System` with counted calls — the same scheme as the `scalebench`
/// binary (duplicated here because `epnet-bench`'s library forbids
/// unsafe code, and a `GlobalAlloc` impl cannot avoid it).
struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Relaxed);
        let live = LIVE.fetch_add(layout.size() as u64, Relaxed) + layout.size() as u64;
        PEAK.fetch_max(live, Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        LIVE.fetch_sub(layout.size() as u64, Relaxed);
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Relaxed);
        let old = layout.size() as u64;
        let new = new_size as u64;
        if new >= old {
            let live = LIVE.fetch_add(new - old, Relaxed) + (new - old);
            PEAK.fetch_max(live, Relaxed);
        } else {
            LIVE.fetch_sub(old - new, Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

struct Meter;

impl AllocMeter for Meter {
    fn begin(&self) {
        WINDOW_BASE.store(ALLOCS.load(Relaxed), Relaxed);
        PEAK.store(LIVE.load(Relaxed), Relaxed);
    }

    fn end(&self) -> AllocWindow {
        AllocWindow {
            allocs: ALLOCS.load(Relaxed) - WINDOW_BASE.load(Relaxed),
            peak_bytes: PEAK.load(Relaxed),
        }
    }
}

/// The canonical scenario merges 30% uniform-random with search-like
/// bursty traffic — the burst-heavy pattern that historically made
/// `pending_credits` queues and calendar buckets reallocate. After the
/// half-horizon warmup every pool is at its high-water mark, so the
/// steady-state window must average under one allocation per hundred
/// events (the same bound `BENCH_scale.json` records).
#[test]
fn burst_heavy_run_allocates_nothing_per_event_after_warmup() {
    let point = ScalePoint {
        name: "fbfly_2x8x2_zero_alloc".to_string(),
        topo: ScaleTopo::Fbfly { c: 2, k: 8, n: 2 },
        horizon: SimTime::from_ms(4),
        recipe: scalebench::Recipe::Canonical,
        model: SimModel::Packet,
    };
    let run = scalebench::measure(&point, &Meter);
    assert!(
        run.measured_events > 10_000,
        "window too small to be meaningful: {} events",
        run.measured_events
    );
    let ape = run.allocs_per_event();
    assert!(
        ape < 0.01,
        "steady state allocates: {} allocs over {} events ({ape:.4}/event)",
        run.measured_allocs,
        run.measured_events
    );
}
