//! Telemetry integration: tracing and metrics must observe the
//! simulation without perturbing it.
//!
//! The load-bearing guarantee is byte-identical serialized reports —
//! metrics map included — across every combination of scheduler
//! backend (`EPNET_SCHED`), route mode (`EPNET_ROUTES`), and tracing
//! on/off. Wall-clock phase timings are exempt by construction: the
//! report serializer excludes them.

use epnet::exp::{EvalScale, WorkloadKind};
use epnet::prelude::*;
use epnet::sim::{MemorySink, TraceCategory, Tracer};
use epnet_telemetry::{parse_jsonl, validate_jsonl, TraceRecord};
use std::sync::Mutex;

/// Serializes the env-twiddling tests in this binary — `EPNET_SCHED`,
/// `EPNET_ROUTES`, `EPNET_EPOCH`, and `EPNET_TRACE` are process-global.
static ENV_LOCK: Mutex<()> = Mutex::new(());

fn tiny() -> EvalScale {
    let mut s = EvalScale::tiny();
    s.duration = SimTime::from_ms(1);
    s
}

/// Runs the tiny Search scenario, optionally traced; returns the
/// serialized report and the trace text.
fn run_traced(traced: bool) -> (String, String) {
    let scale = tiny();
    let fabric = scale.fabric();
    let mut sim = Simulator::new(
        fabric,
        SimConfig::default(),
        WorkloadKind::Search.source(scale.hosts() as u32, scale.seed, scale.duration),
    );
    let sink = MemorySink::new();
    if traced {
        sim.set_tracer(Tracer::new(sink.clone(), TraceCategory::ALL_MASK));
    }
    let report = sim.run_until(scale.duration);
    (
        serde_json::to_string_pretty(&report).expect("report serializes"),
        sink.contents(),
    )
}

#[test]
fn reports_are_byte_identical_across_modes_and_tracing() {
    let _guard = ENV_LOCK.lock().unwrap();
    let mut reports = Vec::new();
    for sched in ["calendar", "heap"] {
        std::env::set_var("EPNET_SCHED", sched);
        for routes in ["table", "dynamic"] {
            std::env::set_var("EPNET_ROUTES", routes);
            for epoch in ["active", "sweep"] {
                std::env::set_var("EPNET_EPOCH", epoch);
                for traced in [false, true] {
                    let (report, trace) = run_traced(traced);
                    assert_eq!(traced, !trace.is_empty(), "tracer emits iff installed");
                    reports.push((format!("{sched}/{routes}/{epoch}/traced={traced}"), report));
                }
            }
        }
    }
    std::env::remove_var("EPNET_SCHED");
    std::env::remove_var("EPNET_ROUTES");
    std::env::remove_var("EPNET_EPOCH");
    let (base_label, base) = &reports[0];
    for (label, report) in &reports[1..] {
        assert_eq!(
            base, report,
            "serialized report differs between {base_label} and {label}"
        );
    }
}

/// The same guarantee beyond the toy fabric: an FBFLY(4,16,2) — 64
/// hosts, 16 switches, large enough to exercise multi-candidate
/// adaptive routing, credit backpressure, and calendar-queue resizes —
/// must also serialize byte-identically across scheduler backend,
/// route mode, and tracing. Guards the struct-of-arrays hot-state
/// layout and the free-list recycling at a scale where their bugs
/// would actually surface.
#[test]
fn reports_are_byte_identical_across_modes_at_scale() {
    let _guard = ENV_LOCK.lock().unwrap();
    let horizon = SimTime::from_ms(2);
    let run = || {
        let fabric = epnet::topology::FlattenedButterfly::new(4, 16, 2)
            .expect("valid shape")
            .build_fabric();
        let hosts = fabric.num_hosts() as u32;
        let sim = Simulator::new(
            fabric,
            SimConfig::default(),
            WorkloadKind::Search.source(hosts, 7, horizon),
        );
        let report = sim.run_until(horizon);
        serde_json::to_string_pretty(&report).expect("report serializes")
    };
    let mut reports = Vec::new();
    for sched in ["calendar", "heap"] {
        std::env::set_var("EPNET_SCHED", sched);
        for routes in ["table", "dynamic"] {
            std::env::set_var("EPNET_ROUTES", routes);
            reports.push((format!("{sched}/{routes}"), run()));
        }
    }
    std::env::remove_var("EPNET_SCHED");
    std::env::remove_var("EPNET_ROUTES");
    let (base_label, base) = &reports[0];
    for (label, report) in &reports[1..] {
        assert_eq!(
            base, report,
            "serialized report differs between {base_label} and {label}"
        );
    }
}

#[test]
fn trace_is_schema_valid_and_covers_the_controller() {
    let _guard = ENV_LOCK.lock().unwrap();
    let (report, trace) = run_traced(true);
    let stats = validate_jsonl(&trace).expect("every emitted line passes the schema");
    assert!(stats.lines > 0);
    assert!(stats.count(TraceCategory::Controller) > 0, "epochs fired");
    assert!(
        stats.count(TraceCategory::Reactivation) > 0,
        "rate changes traced"
    );

    // Timestamps are monotone per file: the engine pops in time order.
    let records = parse_jsonl(&trace).expect("parses");
    let mut last = 0;
    for r in &records {
        assert!(r.at_ps() >= last, "timestamps must not go backwards");
        last = r.at_ps();
    }

    // The metrics map made it into the serialized report.
    let v: serde_json::Value = serde_json::from_str(&report).expect("report is JSON");
    let metrics = v.get("metrics").expect("metrics serialized");
    assert!(
        metrics.get("events_workload").is_some(),
        "event-kind counters present"
    );
    assert!(
        v.get("phases").is_none(),
        "wall-clock phases must not be serialized"
    );
}

#[test]
fn category_filter_narrows_emission() {
    let _guard = ENV_LOCK.lock().unwrap();
    let scale = tiny();
    let fabric = scale.fabric();
    let mut sim = Simulator::new(
        fabric,
        SimConfig::default(),
        WorkloadKind::Search.source(scale.hosts() as u32, scale.seed, scale.duration),
    );
    let sink = MemorySink::new();
    sim.set_tracer(Tracer::new(sink.clone(), TraceCategory::Controller.bit()));
    sim.run_until(scale.duration);
    let records = parse_jsonl(&sink.contents()).expect("parses");
    assert!(!records.is_empty());
    assert!(
        records
            .iter()
            .all(|r| matches!(r, TraceRecord::Controller { .. })),
        "filtered tracer must emit only the selected category"
    );
}

/// `epoch_queue_samples` deliberately counts *every* channel at every
/// tick, in both epoch modes: the active-set path skips visiting
/// resting channels but still credits them with an exact-zero sample,
/// so the derived mean queue depth keeps the same denominator. The
/// counter must therefore equal `events_epoch_tick × num_channels`
/// whichever implementation ran.
#[test]
fn epoch_queue_samples_count_every_channel_in_both_epoch_modes() {
    let _guard = ENV_LOCK.lock().unwrap();
    let mut snapshots = Vec::new();
    for epoch in ["active", "sweep"] {
        std::env::set_var("EPNET_EPOCH", epoch);
        let scale = tiny();
        let fabric = scale.fabric();
        let sim = Simulator::new(
            fabric,
            SimConfig::default(),
            WorkloadKind::Search.source(scale.hosts() as u32, scale.seed, scale.duration),
        );
        let report = sim.run_until(scale.duration);
        let ticks = report.metrics["events_epoch_tick"];
        let samples = report.metrics["epoch_queue_samples"];
        assert!(ticks > 0, "epochs fired under {epoch}");
        assert_eq!(
            samples,
            ticks * report.num_channels as u64,
            "every channel must be sampled every tick under {epoch}"
        );
        snapshots.push((samples, report.metrics["epoch_queue_bytes_sum"]));
    }
    std::env::remove_var("EPNET_EPOCH");
    assert_eq!(
        snapshots[0], snapshots[1],
        "queue metrics are mode-independent"
    );
}

#[test]
fn epnet_trace_env_var_writes_a_valid_file() {
    let _guard = ENV_LOCK.lock().unwrap();
    let path = std::env::temp_dir().join(format!("epnet_trace_test_{}.jsonl", std::process::id()));
    std::env::set_var("EPNET_TRACE", &path);
    std::env::set_var("EPNET_TRACE_FILTER", "controller,reactivation");
    let scale = tiny();
    let fabric = scale.fabric();
    let sim = Simulator::new(
        fabric,
        SimConfig::default(),
        WorkloadKind::Search.source(scale.hosts() as u32, scale.seed, scale.duration),
    );
    sim.run_until(scale.duration);
    std::env::remove_var("EPNET_TRACE");
    std::env::remove_var("EPNET_TRACE_FILTER");

    let text = std::fs::read_to_string(&path).expect("trace file written");
    let _ = std::fs::remove_file(&path);
    let stats = validate_jsonl(&text).expect("file passes the schema");
    assert!(stats.count(TraceCategory::Controller) > 0);
    assert_eq!(stats.count(TraceCategory::Credit), 0, "filtered out");
    assert_eq!(stats.count(TraceCategory::Detour), 0, "filtered out");
}

/// A typo in `EPNET_TRACE_FILTER` must disable tracing entirely (with
/// a stderr complaint) rather than silently narrowing the filter: the
/// trace file is never created, and the run itself proceeds.
#[test]
fn unknown_trace_filter_name_disables_tracing() {
    let _guard = ENV_LOCK.lock().unwrap();
    let path = std::env::temp_dir().join(format!(
        "epnet_trace_badfilter_{}.jsonl",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    std::env::set_var("EPNET_TRACE", &path);
    std::env::set_var("EPNET_TRACE_FILTER", "controller,bogus");
    let scale = tiny();
    let fabric = scale.fabric();
    let sim = Simulator::new(
        fabric,
        SimConfig::default(),
        WorkloadKind::Search.source(scale.hosts() as u32, scale.seed, scale.duration),
    );
    let report = sim.run_until(scale.duration);
    std::env::remove_var("EPNET_TRACE");
    std::env::remove_var("EPNET_TRACE_FILTER");
    assert!(report.events_processed > 0, "the run itself proceeds");
    assert!(
        !path.exists(),
        "a rejected filter must not create a trace file"
    );
}
