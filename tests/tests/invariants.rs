//! Property-based invariants over random fabrics, workloads, and
//! controller configurations.

use epnet::prelude::*;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Random small fabric.
fn fabric_strategy() -> impl Strategy<Value = (u16, u16, usize)> {
    (1u16..5, 2u16..6, 2usize..4)
}

/// Random message list over `hosts` hosts, bounded load.
fn messages(hosts: u32, seed: u64, count: usize) -> Vec<Message> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut at = SimTime::from_us(1);
    (0..count)
        .map(|_| {
            at += SimTime::from_ns(rng.gen_range(1_000..80_000));
            let src = rng.gen_range(0..hosts);
            let dst = (src + rng.gen_range(1..hosts)) % hosts;
            Message {
                at,
                src: HostId::new(src),
                dst: HostId::new(dst),
                bytes: rng.gen_range(64..64_000),
            }
        })
        .collect()
}

fn config_for(mode: ControlMode, policy: RatePolicy) -> SimConfig {
    let mut b = SimConfig::builder();
    b.control(mode).policy(policy);
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn every_byte_is_conserved(
        (c, k, n) in fabric_strategy(),
        seed in any::<u64>(),
        mode_pick in 0u8..3,
        policy_pick in 0u8..3,
    ) {
        let f = FlattenedButterfly::new(c, k, n).unwrap();
        let g = f.build_fabric();
        let hosts = g.num_hosts() as u32;
        prop_assume!(hosts >= 2);
        let msgs = messages(hosts, seed, 300);
        let offered: u64 = msgs.iter().map(|m| m.bytes).sum();
        let mode = [ControlMode::AlwaysFull, ControlMode::PairedLink, ControlMode::IndependentChannel][mode_pick as usize];
        let policy = [RatePolicy::HalveDouble, RatePolicy::JumpToExtremes, RatePolicy::Hysteresis { low: 0.2, high: 0.8 }][policy_pick as usize];
        // Long enough that even slow detuned links drain (last message
        // at ~25 ms worst case).
        let end = SimTime::from_ms(120);
        let report = Simulator::new(g, config_for(mode, policy), ReplaySource::new(msgs))
            .run_until(end);
        prop_assert_eq!(report.offered_bytes, offered);
        prop_assert_eq!(report.delivered_bytes, offered, "all traffic must drain");
    }

    #[test]
    fn relative_power_is_bounded(
        (c, k, n) in fabric_strategy(),
        seed in any::<u64>(),
    ) {
        let g = FlattenedButterfly::new(c, k, n).unwrap().build_fabric();
        let hosts = g.num_hosts() as u32;
        prop_assume!(hosts >= 2);
        let msgs = messages(hosts, seed, 200);
        let report = Simulator::new(
            g,
            config_for(ControlMode::IndependentChannel, RatePolicy::HalveDouble),
            ReplaySource::new(msgs),
        )
        .run_until(SimTime::from_ms(30));
        for profile in [LinkPowerProfile::Measured, LinkPowerProfile::Ideal] {
            let p = report.relative_power(&profile);
            let floor = profile.relative_power(LinkRate::R2_5);
            prop_assert!(p <= 1.0 + 1e-9, "relative power {p} exceeds baseline");
            prop_assert!(
                p >= floor - 1e-9,
                "relative power {p} below the all-slowest floor {floor}"
            );
        }
        // Residency fractions partition the run.
        let total: f64 = report.time_at_speed_fractions().iter().sum::<f64>()
            + report.residency.off_fraction();
        prop_assert!((total - 1.0).abs() < 1e-9, "fractions sum to {total}");
    }

    #[test]
    fn latency_never_below_baseline_floor(
        (c, k, n) in fabric_strategy(),
        seed in any::<u64>(),
    ) {
        // EP control can only delay packets relative to an uncongested
        // baseline of the same traffic.
        let f = FlattenedButterfly::new(c, k, n).unwrap();
        let hosts = f.num_hosts() as u32;
        prop_assume!(hosts >= 2);
        let msgs = messages(hosts, seed, 150);
        let end = SimTime::from_ms(60);
        let base = Simulator::new(
            f.build_fabric(),
            SimConfig::baseline(),
            ReplaySource::new(msgs.clone()),
        )
        .run_until(end);
        let ep = Simulator::new(
            f.build_fabric(),
            config_for(ControlMode::PairedLink, RatePolicy::HalveDouble),
            ReplaySource::new(msgs),
        )
        .run_until(end);
        prop_assert_eq!(ep.packets_delivered, base.packets_delivered);
        prop_assert!(
            ep.mean_packet_latency + SimTime::from_ns(1) > base.mean_packet_latency,
            "EP latency {} cannot beat baseline {}",
            ep.mean_packet_latency,
            base.mean_packet_latency
        );
    }

    #[test]
    fn baseline_time_is_all_full_rate(
        (c, k, n) in fabric_strategy(),
        seed in any::<u64>(),
    ) {
        let g = FlattenedButterfly::new(c, k, n).unwrap().build_fabric();
        let hosts = g.num_hosts() as u32;
        prop_assume!(hosts >= 2);
        let report = Simulator::new(
            g,
            SimConfig::baseline(),
            ReplaySource::new(messages(hosts, seed, 50)),
        )
        .run_until(SimTime::from_ms(10));
        prop_assert_eq!(report.reconfigurations, 0);
        let fr = report.time_at_speed_fractions();
        prop_assert!((fr[LinkRate::R40.index()] - 1.0).abs() < 1e-12);
    }
}
