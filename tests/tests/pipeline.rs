//! Full-pipeline integration: generate → record → replay → simulate,
//! determinism, and the dynamic-topology extension.

use epnet::prelude::*;
use epnet::sim::MergedSource;
use epnet::workloads::{read_trace, record_trace};
use epnet_integration::round_robin_messages;

fn fabric() -> FabricGraph {
    FlattenedButterfly::new(4, 4, 3).unwrap().build_fabric()
}

#[test]
fn recorded_trace_replays_identically() {
    let dir = std::env::temp_dir().join(format!("epnet-int-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("search.jsonl");

    let horizon = SimTime::from_ms(2);
    let generator = ServiceTrace::builder(64, ServiceTraceConfig::search_like())
        .seed(99)
        .horizon(horizon)
        .build();
    record_trace(&path, generator, usize::MAX).unwrap();

    // Simulate live-generated and replayed traffic; the runs must agree
    // bit-for-bit.
    let live = ServiceTrace::builder(64, ServiceTraceConfig::search_like())
        .seed(99)
        .horizon(horizon)
        .build();
    let from_live = Simulator::new(fabric(), SimConfig::default(), live).run_until(horizon);
    let replay = read_trace(&path).unwrap();
    let from_replay = Simulator::new(fabric(), SimConfig::default(), replay).run_until(horizon);

    assert_eq!(from_live.packets_delivered, from_replay.packets_delivered);
    assert_eq!(from_live.delivered_bytes, from_replay.delivered_bytes);
    assert_eq!(
        from_live.mean_packet_latency,
        from_replay.mean_packet_latency
    );
    assert_eq!(from_live.reconfigurations, from_replay.reconfigurations);
    assert_eq!(
        from_live.residency.at_rate_ps,
        from_replay.residency.at_rate_ps
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn simulation_is_deterministic() {
    let run = || {
        let src = UniformRandom::builder(64)
            .offered_load(0.2)
            .seed(7)
            .horizon(SimTime::from_ms(2))
            .build();
        Simulator::new(fabric(), SimConfig::default(), src).run_until(SimTime::from_ms(2))
    };
    let a = run();
    let b = run();
    assert_eq!(a.packets_delivered, b.packets_delivered);
    assert_eq!(a.mean_packet_latency, b.mean_packet_latency);
    assert_eq!(a.residency.at_rate_ps, b.residency.at_rate_ps);
    assert_eq!(a.reconfigurations, b.reconfigurations);
}

#[test]
fn merged_sources_simulate_like_their_union() {
    let a = round_robin_messages(16, 10, 50, 8_192);
    let b = round_robin_messages(16, 10, 73, 4_096);
    let merged = MergedSource::new(ReplaySource::new(a.clone()), ReplaySource::new(b.clone()));
    let mut union = a;
    union.extend(b);
    let end = SimTime::from_ms(5);
    let from_merged = Simulator::new(fabric(), SimConfig::baseline(), merged).run_until(end);
    let from_union =
        Simulator::new(fabric(), SimConfig::baseline(), ReplaySource::new(union)).run_until(end);
    assert_eq!(from_merged.delivered_bytes, from_union.delivered_bytes);
    assert_eq!(from_merged.packets_delivered, from_union.packets_delivered);
}

#[test]
fn dynamic_topology_powers_links_off_under_low_load() {
    let g = fabric();
    let src = ServiceTrace::builder(64, {
        let mut c = ServiceTraceConfig::advert_like();
        c.target_utilization = 0.02;
        c
    })
    .seed(5)
    .horizon(SimTime::from_ms(4))
    .build();
    let mut sim = Simulator::new(g.clone(), SimConfig::default(), src);
    sim.enable_dynamic_topology(DynamicTopology::new(&g, DynamicTopologyConfig::default()));
    let report = sim.run_until(SimTime::from_ms(4));
    assert!(
        report.residency.off_fraction() > 0.02,
        "expected some channel-time powered off, got {:.4}",
        report.residency.off_fraction()
    );
    // Traffic still flows (a small tail may be in flight at the cutoff).
    assert!(
        report.delivery_ratio() > 0.95,
        "ratio {}",
        report.delivery_ratio()
    );
}

#[test]
fn dynamic_topology_powers_links_back_on_under_load() {
    // Quiet first half, heavy second half: links must come back.
    let g = fabric();
    let mut msgs = round_robin_messages(64, 2, 1_000, 4_096); // sparse
    for r in 0..60u64 {
        for h in 0..64u32 {
            // Rotate destinations each round so minimal-adaptive routing
            // can spread the load across links (a fixed permutation
            // would concentrate 4 hosts' traffic on one 40 Gb/s link).
            let dst = (h + 1 + (13 * r as u32) % 63) % 64;
            msgs.push(Message {
                at: SimTime::from_us(2_500 + r * 25),
                src: HostId::new(h),
                dst: HostId::new(dst),
                bytes: 64 * 1024,
            });
        }
    }
    let end = SimTime::from_ms(5);
    let mut sim = Simulator::new(
        g.clone(),
        SimConfig::default(),
        ReplaySource::new(msgs.clone()),
    );
    sim.enable_dynamic_topology(DynamicTopology::new(&g, DynamicTopologyConfig::default()));
    let with_dt = sim.run_until(end);
    // Heavy phase is deliverable: compare against plain rate tuning.
    let plain = Simulator::new(g, SimConfig::default(), ReplaySource::new(msgs)).run_until(end);
    assert!(
        with_dt.delivery_ratio() > 0.97,
        "ratio {}",
        with_dt.delivery_ratio()
    );
    // The latency overhead of the detour phase stays bounded (links were
    // re-enabled rather than strangling the burst).
    assert!(
        with_dt.mean_packet_latency < plain.mean_packet_latency + SimTime::from_us(500),
        "dynamic topology latency {} vs plain {}",
        with_dt.mean_packet_latency,
        plain.mean_packet_latency
    );
}

#[test]
fn subtopology_masks_compose_with_simulation() {
    // A statically masked fabric (mesh) still delivers everything.
    let g = fabric();
    let _mesh = LinkMask::subtopology(&g, SubtopologyKind::Mesh);
    let msgs = round_robin_messages(64, 10, 100, 8_192);
    // The public path to masked routing is the dynamic-topology
    // controller; a fully-shed fabric is equivalent to the mesh mask.
    let mut sim = Simulator::new(g.clone(), SimConfig::default(), ReplaySource::new(msgs));
    sim.enable_dynamic_topology(DynamicTopology::new(
        &g,
        DynamicTopologyConfig {
            off_threshold: 0.9, // shed aggressively
            on_threshold: 0.95,
        },
    ));
    let report = sim.run_until(SimTime::from_ms(5));
    assert!(
        report.delivery_ratio() > 0.99,
        "ratio {}",
        report.delivery_ratio()
    );
    assert!(report.residency.off_fraction() > 0.05);
}
