//! End-to-end checks of the paper's quantitative claims, spanning the
//! topology, power, simulation, and workload crates.

use epnet::exp::figures;
use epnet::prelude::*;

#[test]
fn table1_reproduces_exactly() {
    let t = figures::table1();
    assert_eq!(t.clos.switch_chips, 8_192.0);
    assert_eq!(t.fbfly.switch_chips, 4_096.0);
    assert_eq!(t.clos.total_power_watts, 1_146_880.0);
    assert_eq!(t.fbfly.total_power_watts, 737_280.0);
    assert_eq!(t.clos.electrical_links, 49_152);
    assert_eq!(t.clos.optical_links, 65_536);
    assert_eq!(t.fbfly.electrical_links, 47_104);
    assert_eq!(t.fbfly.optical_links, 43_008);
    assert_eq!(t.savings_watts(), 409_600.0);
    assert!((t.clos.watts_per_gbps() - 1.75).abs() < 1e-9);
    assert!((t.fbfly.watts_per_gbps() - 1.125).abs() < 1e-9);
}

#[test]
fn figure1_network_shares_match_paper() {
    let f = figures::figure1();
    // 12% of power at full utilization, ~48% at 15% with EP servers.
    assert!((f.scenarios[0].network_fraction() - 0.123).abs() < 0.005);
    assert!((0.47..0.50).contains(&f.scenarios[1].network_fraction()));
    assert!((f.savings_at_15pct_watts - 974_848.0).abs() < 1.0);
}

#[test]
fn dollar_claims_within_rounding() {
    let c = figures::cost_summary();
    assert!((c.topology_savings_dollars / 1.6e6 - 1.0).abs() < 0.05);
    assert!((c.baseline_fbfly_cost_dollars / 2.89e6 - 1.0).abs() < 0.05);
    assert!((c.ep_network_at_15pct_dollars / 3.8e6 - 1.0).abs() < 0.05);
    assert!((c.six_x_reduction_dollars / 2.4e6 - 1.0).abs() < 0.05);
    assert!((c.six_point_six_x_reduction_dollars / 2.5e6 - 1.0).abs() < 0.05);
}

#[test]
fn slowest_mode_network_power_is_42_percent() {
    // §4.2.1: "A flattened butterfly network that always operated in the
    // slowest and lowest power mode would consume 42% of the baseline
    // power (or 6.1% assuming ideal channels)."
    let profile = LinkPowerProfile::Measured;
    assert_eq!(profile.relative_power(LinkRate::R2_5), 0.42);
    assert_eq!(
        LinkPowerProfile::Ideal.relative_power(LinkRate::R2_5),
        0.0625
    );
}

#[test]
fn energy_proportionality_headline_holds_at_small_scale() {
    // The paper's headline: a 6x ("up to 6.6x") power reduction on
    // trace workloads with ideal channels and only a small latency hit.
    let outcome = epnet_integration::tiny_search().run();
    let p = outcome.report.relative_power(&LinkPowerProfile::Ideal);
    assert!(
        p < 0.30,
        "search-like workload should cut ideal-channel power >3x, got {p:.3}"
    );
    // Power can never beat the ideal floor (§4.2.1).
    assert!(p >= outcome.ideal_power_floor() * 0.99);
    // Latency penalty stays within the paper's "tolerable" regime
    // (tens of microseconds at 50% target / 1 µs reactivation).
    assert!(
        outcome.added_latency() < SimTime::from_us(200),
        "added latency {}",
        outcome.added_latency()
    );
}

#[test]
fn independent_channels_never_worse_than_paired() {
    // §3.3.1 / Figure 7-8: independent channel control strictly expands
    // what the controller can turn down.
    let experiment = epnet_integration::tiny_search();
    let paired = experiment.run_ep();
    let mut cfg = SimConfig::builder();
    cfg.control(ControlMode::IndependentChannel);
    let independent = experiment.with_config(cfg.build()).run_ep();
    let pp = paired.relative_power(&LinkPowerProfile::Ideal);
    let ip = independent.relative_power(&LinkPowerProfile::Ideal);
    assert!(
        ip <= pp * 1.02,
        "independent {ip:.4} should not exceed paired {pp:.4}"
    );
}

#[test]
fn links_spend_majority_of_time_in_lowest_mode() {
    // Figure 7: "in a workload with low average utilization, most links
    // spend a majority of their time in the lowest power/performance
    // state."
    let report = epnet_integration::tiny_search().run_ep();
    let fr = report.time_at_speed_fractions();
    assert!(
        fr[LinkRate::R2_5.index()] > 0.5,
        "lowest-mode fraction {:.3}",
        fr[LinkRate::R2_5.index()]
    );
}

#[test]
fn raising_target_utilization_raises_latency() {
    // Figure 9(a): latency increases substantially more at 75% target
    // than at 25%.
    let experiment = epnet_integration::tiny_search();
    let baseline = experiment.run_baseline();
    let added = |target: f64| {
        let mut cfg = SimConfig::builder();
        cfg.target_utilization(target);
        experiment
            .clone()
            .with_config(cfg.build())
            .run_ep()
            .added_latency_vs(&baseline)
    };
    let low = added(0.25);
    let high = added(0.75);
    assert!(
        high > low,
        "75% target ({high}) should cost more latency than 25% ({low})"
    );
}
