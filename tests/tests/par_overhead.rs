//! Width-1 overhead guard for the sharded parallel engine: running
//! `EPNET_PAR=1` on the canonical FBFLY(2, 8, 2) bursty workload must
//! cost about what the serial engine costs. With pairwise lookahead a
//! single shard owns no cross-shard channels, so nothing bounds its
//! windows and the coordinator drains long stretches between barriers —
//! the replay pass and window scratch are the only overhead left.
//!
//! The guard is deliberately structural, not wall-clock: it bounds
//! events executed (via the byte-identical report and the window
//! diagnostics) and heap allocations (via a counting allocator), both
//! of which are deterministic. Timing assertions would flake on shared
//! CI hardware.
//!
//! Lives in its own binary because the process-wide counting allocator
//! would pollute any co-resident test's numbers.

use epnet::prelude::*;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

static ALLOCS: AtomicU64 = AtomicU64::new(0);

/// `System` with counted calls, same scheme as `zero_alloc.rs`.
struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// The canonical determinism-suite scenario (same shape and seed as
/// `par_modes.rs`), returning the report and the allocation count the
/// run charged.
fn run_canonical() -> (SimReport, u64) {
    let fabric = FlattenedButterfly::new(2, 8, 2)
        .expect("valid shape")
        .build_fabric();
    let config = SimConfig::builder().build();
    let horizon = SimTime::from_ms(1);
    let src = UniformRandom::builder(fabric.num_hosts() as u32)
        .offered_load(0.08)
        .seed(11)
        .horizon(horizon)
        .build();
    let mut sim = Simulator::new(fabric.clone(), config, src);
    sim.enable_dynamic_topology(DynamicTopology::new(
        &fabric,
        DynamicTopologyConfig::default(),
    ));
    let before = ALLOCS.load(Relaxed);
    let report = sim.run_until(horizon);
    let allocs = ALLOCS.load(Relaxed) - before;
    (report, allocs)
}

/// One shard must stay within a small constant factor of the serial
/// engine — same events, same bytes, and no more than a generous
/// allocation multiple (setup buys shard queues, the replica arena,
/// and window scratch; steady state recycles all of it).
#[test]
fn width_one_overhead_is_bounded() {
    std::env::remove_var("EPNET_PAR");
    let (serial_report, serial_allocs) = run_canonical();
    std::env::set_var("EPNET_PAR", "1");
    let (par_report, par_allocs) = run_canonical();
    std::env::remove_var("EPNET_PAR");

    // The contract first: identical serialized reports (this also pins
    // events_processed — the parallel engine executes the same events).
    let serial_json = serde_json::to_string_pretty(&serial_report).expect("serializes");
    let par_json = serde_json::to_string_pretty(&par_report).expect("serializes");
    assert_eq!(serial_json, par_json, "EPNET_PAR=1 diverged from serial");

    // Window diagnostics must be internally consistent: every window
    // event is replayed at the barrier, and a cross-window event's two
    // halves (route + credit) at most double the replay count. At
    // width 1 there are no cross-shard channels at all.
    let d = |k: &str| *par_report.diagnostics.get(k).unwrap_or(&0);
    assert!(d("par_windows") > 0, "width 1 must still run windows");
    assert_eq!(d("par_cross_batches"), 0, "one shard cannot cross-talk");
    assert!(
        d("par_window_events") <= par_report.events_processed,
        "windows executed more events ({}) than the run processed ({})",
        d("par_window_events"),
        par_report.events_processed
    );
    assert!(
        d("par_replay_events") <= 2 * par_report.events_processed,
        "replay walked more records ({}) than two halves per event allow ({} events)",
        d("par_replay_events"),
        par_report.events_processed
    );

    // Allocation overhead: generous 3x factor plus a flat setup
    // allowance for the shard, its queues, and the replica arena.
    let bound = 3 * serial_allocs + 50_000;
    assert!(
        par_allocs <= bound,
        "EPNET_PAR=1 allocated {par_allocs} times vs {serial_allocs} serial \
         (bound {bound})"
    );
}
