//! Reporting pipeline end to end: run a figure at tiny scale,
//! serialize, deserialize, and render it to SVG — exactly what
//! `repro --json` + `render` do across process boundaries.

use epnet::exp::figures::{self, Figure7, Figure8};
use epnet::exp::EvalScale;
use epnet::prelude::*;

fn tiny() -> EvalScale {
    let mut s = EvalScale::tiny();
    s.duration = SimTime::from_ms(1);
    s
}

#[test]
fn figure7_json_round_trip_renders() {
    let f = figures::figure7(tiny());
    let json = serde_json::to_string(&f).unwrap();
    let back: Figure7 = serde_json::from_str(&json).unwrap();
    assert_eq!(back.paired, f.paired);
    let svg = epnet_report::render_figure7(&back);
    assert!(svg.starts_with("<svg"));
    assert!(svg.contains("2.5 Gb/s"));
    // Bars for 5 speeds x 2 series + background + 2 legend swatches.
    assert_eq!(svg.matches("<rect").count(), 13);
}

#[test]
fn figure8_json_round_trip_renders() {
    let f = figures::figure8(tiny());
    let json = serde_json::to_value(&f).unwrap();
    let back: Figure8 = serde_json::from_value(json).unwrap();
    let (a, b) = epnet_report::render_figure8(&back);
    for svg in [&a, &b] {
        assert!(svg.contains("Uniform"));
        assert!(svg.contains("Advert"));
        assert!(svg.contains("Search"));
    }
    // Sanity on the data itself: EP power below baseline everywhere.
    for row in back.measured.iter().chain(&back.ideal) {
        assert!(row.paired_pct < 100.0);
        assert!(row.independent_pct < 100.0);
    }
}

#[test]
fn sim_report_serde_round_trip() {
    let outcome = Experiment::new(tiny(), WorkloadKind::Advert).run();
    let json = serde_json::to_string(&outcome).unwrap();
    let back: epnet::exp::ExperimentOutcome = serde_json::from_str(&json).unwrap();
    assert_eq!(
        back.report.packets_delivered,
        outcome.report.packets_delivered
    );
    assert_eq!(back.report.duration, outcome.report.duration);
    assert_eq!(
        back.report.residency.at_rate_ps,
        outcome.report.residency.at_rate_ps
    );
    assert_eq!(
        back.report.relative_power(&LinkPowerProfile::Measured),
        outcome.report.relative_power(&LinkPowerProfile::Measured)
    );
    // Histogram quantiles survive the trip too.
    assert_eq!(
        back.report.p99_packet_latency(),
        outcome.report.p99_packet_latency()
    );
}
