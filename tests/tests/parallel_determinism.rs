//! Determinism guarantees of the execution machinery: worker-pool
//! width and scheduler backend must never change results, only wall
//! clock.

use epnet::exp::campaign::Campaign;
use epnet::exp::sweep::SensitivitySweep;
use epnet::exp::{EvalScale, Experiment, WorkloadKind};
use epnet::prelude::*;
use std::sync::Mutex;

/// Serializes the env-twiddling tests in this binary — `EPNET_THREADS`
/// and `EPNET_SCHED` are process-global.
static ENV_LOCK: Mutex<()> = Mutex::new(());

fn tiny() -> EvalScale {
    let mut s = EvalScale::tiny();
    s.duration = SimTime::from_ms(1);
    s
}

fn small_sweep() -> SensitivitySweep {
    let mut sweep = SensitivitySweep::paper_grid(tiny(), WorkloadKind::Search);
    sweep.targets = vec![0.25, 0.75];
    sweep.reactivations = vec![SimTime::from_us(1), SimTime::from_us(10)];
    sweep
}

#[test]
fn sweep_and_campaign_are_byte_identical_across_thread_counts() {
    let _guard = ENV_LOCK.lock().unwrap();
    let sweep = small_sweep();

    let mut campaign = Campaign::new();
    let base = Experiment::new(tiny(), WorkloadKind::Advert);
    campaign.push("paired", base.clone());
    let mut cfg = SimConfig::builder();
    cfg.control(ControlMode::IndependentChannel);
    campaign.push("independent", base.with_config(cfg.build()));

    let mut sweep_json = Vec::new();
    let mut campaign_tables = Vec::new();
    for threads in ["1", "4"] {
        std::env::set_var("EPNET_THREADS", threads);
        sweep_json.push(serde_json::to_string_pretty(&sweep.run()).expect("sweep cells serialize"));
        campaign_tables.push(campaign.run().to_table());
    }
    std::env::remove_var("EPNET_THREADS");

    assert_eq!(
        sweep_json[0], sweep_json[1],
        "sweep JSON must not depend on worker-pool width"
    );
    assert_eq!(
        campaign_tables[0], campaign_tables[1],
        "campaign table must not depend on worker-pool width"
    );
}

#[test]
fn scheduler_backend_does_not_change_simulation_output() {
    let _guard = ENV_LOCK.lock().unwrap();
    let experiment = Experiment::new(tiny(), WorkloadKind::Search);

    std::env::set_var("EPNET_SCHED", "heap");
    let heap = serde_json::to_string_pretty(&experiment.run()).expect("outcome serializes");
    std::env::remove_var("EPNET_SCHED");
    let calendar = serde_json::to_string_pretty(&experiment.run()).expect("outcome serializes");

    assert_eq!(
        heap, calendar,
        "calendar queue and binary heap must produce bit-identical runs"
    );
}

#[test]
fn route_mode_does_not_change_simulation_output() {
    let _guard = ENV_LOCK.lock().unwrap();
    let experiment = Experiment::new(tiny(), WorkloadKind::Search);

    std::env::set_var("EPNET_ROUTES", "dynamic");
    let dynamic = serde_json::to_string_pretty(&experiment.run()).expect("outcome serializes");
    std::env::remove_var("EPNET_ROUTES");
    let table = serde_json::to_string_pretty(&experiment.run()).expect("outcome serializes");

    assert_eq!(
        dynamic, table,
        "precomputed route tables and per-hop routing must produce bit-identical runs"
    );
}

#[test]
fn route_mode_is_identical_under_dynamic_topology() {
    let _guard = ENV_LOCK.lock().unwrap();
    // Dynamic topology mutates the link mask at epoch ticks, exercising
    // the lazy route-table rebuild path; the rebuilt tables must still
    // match per-hop routing byte for byte.
    let scale = tiny();
    let fabric = scale.fabric();

    let run = || {
        let mut sim = Simulator::new(
            fabric.clone(),
            SimConfig::default(),
            WorkloadKind::Search.source(scale.hosts() as u32, scale.seed, scale.duration),
        );
        sim.enable_dynamic_topology(DynamicTopology::new(
            &fabric,
            DynamicTopologyConfig::default(),
        ));
        serde_json::to_string_pretty(&sim.run_until(scale.duration)).expect("report serializes")
    };

    std::env::set_var("EPNET_ROUTES", "dynamic");
    let dynamic = run();
    std::env::remove_var("EPNET_ROUTES");
    let table = run();

    assert_eq!(
        dynamic, table,
        "route tables must stay bit-identical across mask reconfigurations"
    );
}
