//! The hybrid flow/packet model's acceptance contract.
//!
//! Two promises hold simultaneously:
//!
//! * **Packet mode is untouched.** `EPNET_MODEL` unset (or `packet`)
//!   serializes a byte-identical `SimReport` to a pre-hybrid build —
//!   asserted here by comparing `Simulator::new` against the explicit
//!   `with_model(Packet)` constructor, and transitively by the golden
//!   fixture in `golden_report.rs`.
//! * **Hybrid mode agrees with packet ground truth.** On small
//!   validation fabrics the fluid abstraction must reproduce the
//!   packet model's delivered bytes and relative network power within
//!   [`scalebench::HYBRID_TOLERANCE`] — the same documented bound the
//!   `BENCH_scale.json` models axis is held to.

use epnet::power::LinkPowerProfile;
use epnet::sim::{MergedSource, SimConfig, SimModel, SimTime, Simulator};
use epnet::topology::{FlattenedButterfly, TwoTierClos};
use epnet::workloads::{ServiceTrace, ServiceTraceConfig, UniformRandom};
use epnet_bench::scalebench;
use std::sync::Mutex;

/// Serializes the env-twiddling test in this binary — `EPNET_MODEL` is
/// process-global and `Simulator::new` reads it at construction.
static ENV_LOCK: Mutex<()> = Mutex::new(());

const HORIZON: SimTime = SimTime::from_ms(2);

/// The canonical validation recipe: 30% uniform-random (512 KiB
/// messages, above the flow absorption threshold) merged with
/// search-like bursts (mostly below it) — both regimes exercised.
fn canonical_source(hosts: u32) -> MergedSource<UniformRandom, ServiceTrace> {
    MergedSource::new(
        UniformRandom::builder(hosts)
            .offered_load(0.3)
            .horizon(HORIZON)
            .build(),
        ServiceTrace::builder(hosts, ServiceTraceConfig::search_like())
            .horizon(HORIZON)
            .build(),
    )
}

#[test]
fn packet_mode_report_is_byte_identical_to_the_default_constructor() {
    let _guard = ENV_LOCK.lock().unwrap();
    std::env::remove_var("EPNET_MODEL");
    let fabric = || {
        FlattenedButterfly::new(2, 8, 2)
            .expect("toy fbfly")
            .build_fabric()
    };
    let default_report =
        Simulator::new(fabric(), SimConfig::default(), canonical_source(16)).run_until(HORIZON);
    let explicit_report = Simulator::with_model(
        fabric(),
        SimConfig::default(),
        canonical_source(16),
        SimModel::Packet,
    )
    .run_until(HORIZON);
    assert_eq!(
        serde_json::to_string_pretty(&default_report).unwrap(),
        serde_json::to_string_pretty(&explicit_report).unwrap(),
        "explicit packet model must be the default, byte for byte"
    );
    assert!(default_report.pod_delivered_bytes.is_empty());
    assert_eq!(default_report.diagnostics["flows_absorbed"], 0);
}

#[test]
fn hybrid_agrees_with_packet_within_the_documented_tolerance() {
    let run = |model: SimModel| {
        Simulator::with_model(
            TwoTierClos::non_blocking(4)
                .expect("toy clos")
                .build_fabric(),
            SimConfig::default(),
            canonical_source(32),
            model,
        )
        .run_until(HORIZON)
    };
    let packet = run(SimModel::Packet);
    let hybrid = run(SimModel::Hybrid);

    assert!(hybrid.diagnostics["flows_absorbed"] > 0, "nothing absorbed");
    assert!(
        hybrid.packets_delivered < packet.packets_delivered,
        "absorption must shrink the packet population"
    );

    let bytes_err = (hybrid.delivered_bytes as f64 - packet.delivered_bytes as f64).abs()
        / packet.delivered_bytes as f64;
    assert!(
        bytes_err <= scalebench::HYBRID_TOLERANCE,
        "delivered-bytes error {bytes_err:.4} exceeds tolerance {}",
        scalebench::HYBRID_TOLERANCE
    );
    let profile = LinkPowerProfile::Measured;
    let power_err = (hybrid.relative_power(&profile) - packet.relative_power(&profile)).abs();
    assert!(
        power_err <= scalebench::HYBRID_TOLERANCE,
        "relative-power error {power_err:.4} exceeds tolerance {}",
        scalebench::HYBRID_TOLERANCE
    );

    // The per-pod rollup: bounded (<= 64 pods), non-empty in hybrid
    // mode, and accounting real bytes.
    assert!(!hybrid.pod_delivered_bytes.is_empty());
    assert!(hybrid.pod_delivered_bytes.len() <= 64);
    assert!(hybrid.pod_delivered_bytes.iter().sum::<u64>() > 0);
}

#[test]
fn env_model_selects_the_hybrid_engine() {
    let _guard = ENV_LOCK.lock().unwrap();
    let bulk = || {
        UniformRandom::builder(16)
            .message_bytes(512 * 1024)
            .offered_load(0.2)
            .horizon(SimTime::from_us(500))
            .build()
    };
    let fabric = || {
        FlattenedButterfly::new(2, 8, 2)
            .expect("toy fbfly")
            .build_fabric()
    };
    std::env::set_var("EPNET_MODEL", "hybrid");
    let hybrid =
        Simulator::new(fabric(), SimConfig::default(), bulk()).run_until(SimTime::from_us(500));
    std::env::remove_var("EPNET_MODEL");
    let packet =
        Simulator::new(fabric(), SimConfig::default(), bulk()).run_until(SimTime::from_us(500));
    assert!(
        hybrid.diagnostics["flows_absorbed"] > 0,
        "EPNET_MODEL=hybrid must reach the flow table"
    );
    assert_eq!(packet.diagnostics["flows_absorbed"], 0);
    assert!(!hybrid.pod_delivered_bytes.is_empty());
    assert!(packet.pod_delivered_bytes.is_empty());
}
