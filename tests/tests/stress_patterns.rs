//! Stress patterns end to end: permutations and incast through the
//! simulator, with and without the paper's mechanisms.

use epnet::prelude::*;
use epnet::sim::MergedSource;

fn fabric() -> FabricGraph {
    FlattenedButterfly::new(4, 4, 3).unwrap().build_fabric() // 64 hosts
}

#[test]
fn random_permutation_saturates_minimal_but_not_ugal() {
    // 60% load on a fixed random permutation: minimal routing pins each
    // flow to its single minimal path while UGAL spreads.
    let traffic = || Permutation::random(64, 11, 64 * 1024, 0.6).with_horizon(SimTime::from_ms(4));
    let minimal =
        Simulator::new(fabric(), SimConfig::baseline(), traffic()).run_until(SimTime::from_ms(6));
    let mut cfg = SimConfig::builder();
    cfg.ugal().control(ControlMode::AlwaysFull);
    let ugal = Simulator::new(fabric(), cfg.build(), traffic()).run_until(SimTime::from_ms(6));
    assert!(
        ugal.delivery_ratio() >= minimal.delivery_ratio(),
        "UGAL ({:.3}) must not lose to minimal ({:.3})",
        ugal.delivery_ratio(),
        minimal.delivery_ratio()
    );
    assert!(
        ugal.delivery_ratio() > 0.9,
        "got {:.3}",
        ugal.delivery_ratio()
    );
}

#[test]
fn incast_congests_only_the_sink_ejection() {
    // 16-to-1 incast: the sink's ejection port is the bottleneck, so
    // delivery lags but the rest of the fabric stays healthy — shown by
    // background traffic being unaffected.
    // 16 x 256 KiB per round = 4 MiB, ~840 µs to drain at 40 Gb/s; a
    // 1.2 ms period keeps the sink below saturation on average while
    // each round still slams the ejection queue.
    let incast = Incast::new(64, HostId::new(0), 16, 256 * 1024, SimTime::from_us(1200))
        .with_horizon(SimTime::from_ms(4));
    let background =
        || Permutation::shift(64, 21, 16 * 1024, 0.05).with_horizon(SimTime::from_ms(4));
    let merged = MergedSource::new(incast, background());
    let combined =
        Simulator::new(fabric(), SimConfig::baseline(), merged).run_until(SimTime::from_ms(6));
    let alone = Simulator::new(fabric(), SimConfig::baseline(), background())
        .run_until(SimTime::from_ms(6));
    // The background permutation avoids host 0's ejection (21-shift),
    // so its own latency barely moves even while the incast hammers the
    // sink. We can't separate flows in the merged report, so instead
    // check the incast run still delivers the background's share.
    assert!(
        combined.delivery_ratio() > 0.9,
        "got {}",
        combined.delivery_ratio()
    );
    assert!(alone.delivery_ratio() > 0.999);
    // The sink hotspot shows up as deep queues.
    assert!(
        combined.peak_queue_bytes > alone.peak_queue_bytes * 4,
        "incast must build a deep ejection queue ({} vs {})",
        combined.peak_queue_bytes,
        alone.peak_queue_bytes
    );
}

#[test]
fn ep_control_rides_through_an_incast_storm() {
    let incast = Incast::new(64, HostId::new(7), 12, 128 * 1024, SimTime::from_us(500))
        .with_horizon(SimTime::from_ms(4));
    let report =
        Simulator::new(fabric(), SimConfig::default(), incast).run_until(SimTime::from_ms(6));
    assert!(
        report.delivery_ratio() > 0.95,
        "got {}",
        report.delivery_ratio()
    );
    // Most of the fabric is idle; power savings persist during incast.
    assert!(report.relative_power(&LinkPowerProfile::Ideal) < 0.4);
}
