//! In-process twin of `scripts/bench_smoke.sh`: exercises the
//! scheduler hold model on both backends, one small parallel sweep,
//! and the canonical `BENCH_engine.json` scenario, asserting
//! correctness (identical pop streams, well-formed cells, schema
//! validity) rather than speed — wall-clock assertions would flake on
//! loaded machines, so the perf claims live in the benchmarks and
//! EXPERIMENTS.md.

use epnet::exp::sweep::SensitivitySweep;
use epnet::exp::{EvalScale, WorkloadKind};
use epnet::sim::{Backend, MemorySink, Scheduler, SimModel, SimTime, TraceCategory, Tracer};
use epnet_bench::{csv, enginebench, loadbench, scalebench};
use epnet_report::analysis;
use epnet_telemetry::export::chrome_trace;
use epnet_telemetry::{parse_jsonl, validate_jsonl};

/// SplitMix64, matching the generator in benches/scheduler.rs.
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

#[test]
fn hold_model_streams_match_across_backends() {
    let pending = 50_000usize;
    let holds = 200_000usize;
    let mut streams: Vec<Vec<(SimTime, u64)>> = Vec::new();
    for backend in [Backend::Calendar, Backend::BinaryHeap] {
        let mut q = Scheduler::with_backend(backend);
        let mut rng = Mix(42);
        for i in 0..pending {
            q.schedule(SimTime::from_ps(rng.next() % 4_000_000), i as u64);
        }
        let mut stream = Vec::with_capacity(holds);
        for _ in 0..holds {
            let (t, tag) = q.pop().expect("hold model never drains");
            stream.push((t, tag));
            let at = SimTime::from_ps(t.as_ps() + (rng.next() % 4_000_000));
            q.schedule(at, tag);
        }
        assert_eq!(q.len(), pending, "hold model keeps the set size steady");
        streams.push(stream);
    }
    assert_eq!(
        streams[0], streams[1],
        "calendar and heap must pop identical (time, item) streams"
    );
}

#[test]
fn small_sweep_produces_well_formed_cells() {
    let mut scale = EvalScale::tiny();
    scale.duration = SimTime::from_ms(1);
    let mut sweep = SensitivitySweep::paper_grid(scale, WorkloadKind::Search);
    sweep.targets = vec![0.5];
    sweep.reactivations = vec![SimTime::from_us(1), SimTime::from_us(10)];

    let cells = sweep.run();
    assert_eq!(cells.len(), 2);
    for cell in &cells {
        assert_eq!(cell.workload, "Search");
        assert!(cell.delivery_ratio > 0.0 && cell.delivery_ratio <= 1.0 + 1e-9);
        assert!(cell.power_ideal > 0.0 && cell.power_ideal <= 1.0 + 1e-9);
    }
}

#[test]
fn engine_bench_document_is_well_formed() {
    // The only test in this binary touching `EPNET_ROUTES`, so no env
    // lock is needed; `measure_both_modes` restores the prior value.
    let runs = enginebench::measure_both_modes();
    assert_eq!(runs.len(), 2);
    assert_eq!(runs[0].name, "route_table");
    assert_eq!(runs[1].name, "dynamic_routes");
    for r in &runs {
        assert!(r.sim_events > 0, "{}: engine popped no events", r.name);
        assert!(r.sim_packets > 0, "{}: nothing delivered", r.name);
        assert!(r.wall_ms > 0.0);
    }
    // Both route modes simulate the identical run, so their simulation
    // counters — not just the final report — must agree exactly.
    assert_eq!(runs[0].sim_events, runs[1].sim_events);
    assert_eq!(runs[0].sim_packets, runs[1].sim_packets);
    assert_eq!(runs[0].sim_delivered_bytes, runs[1].sim_delivered_bytes);

    let doc = enginebench::render(&runs);
    let names = enginebench::validate(&doc).expect("rendered document validates");
    assert_eq!(names, vec!["route_table", "dynamic_routes"]);
}

/// In-process twin of the loadbench smoke: the reduced sweep's
/// low-load point must cross-check byte-identical reports between the
/// two `EPNET_EPOCH` modes (`measure` panics otherwise), do strictly
/// less controller work per tick than the channel count — the
/// activity-proportional bound — and render a schema-valid document.
/// `measure` briefly sets `EPNET_EPOCH`, which is safe here: the
/// variable selects an execution detail whose output is asserted
/// identical, so a concurrently constructed simulator in another test
/// cannot observe a difference.
#[test]
fn load_bench_document_is_well_formed_and_activity_bounded() {
    let points = loadbench::sweep(true);
    let low = points.first().expect("reduced sweep is non-empty");
    assert!(low.load <= 0.1, "first reduced point is the low-load one");
    let run = loadbench::measure(low);
    assert_eq!(run.sweep.epoch_ticks, run.active.epoch_ticks);
    assert!(
        run.sweep.decisions_per_tick() >= run.channels as f64 - 1e-9,
        "the sweep reference visits every tunable channel every tick"
    );
    assert!(
        run.active.decisions_per_tick() < run.channels as f64,
        "active-set work must be bounded by activity, not topology"
    );
    assert!(
        run.decisions_speedup() >= 2.0,
        "low-load speedup collapsed to {:.2}x",
        run.decisions_speedup()
    );
    let doc = loadbench::render(&[run]);
    let names = loadbench::validate(&doc).expect("rendered document validates");
    assert_eq!(names.len(), 1);
}

/// In-process twin of the scalebench v5 hybrid additions: the reduced
/// sweep must carry the 10^5- and 2^20-host hybrid points, the cheap
/// 960-host hybrid point must complete its horizon fluid-only (no
/// packets, all bytes via flows) and byte-identically under
/// `EPNET_PAR=2` (the reduced twin of the `hybrid_threads` axis), the
/// models axis measured on the smallest packet point must sit inside
/// the documented tolerance, the committed `BENCH_scale.json` must
/// pass the v5 schema, and a freshly rendered document must too. The
/// big points themselves run in `scripts/bench_smoke.sh` and the
/// release binary, not here — the million-host point is seconds-long
/// in release and unaffordable under the test profile.
#[test]
fn hybrid_scale_twin_completes_and_models_agree() {
    let points = scalebench::sweep(true);
    let big = points
        .iter()
        .find(|p| p.name == "hybrid_fbfly_32x16x4")
        .expect("reduced sweep keeps the Solnushkin-scale point");
    assert_eq!(big.model, SimModel::Hybrid);
    let million = scalebench::hybrid_axis_point(&points);
    assert_eq!(million.name, "hybrid_fbfly_32x32x4");

    let cheap = points
        .iter()
        .find(|p| p.name == "hybrid_fbfly_15x8x3")
        .expect("reduced sweep keeps the cheap hybrid point");
    let run = scalebench::measure(cheap, &scalebench::NoopMeter);
    assert_eq!(run.model, SimModel::Hybrid);
    assert_eq!(run.hosts, 960);
    assert_eq!(run.sim_packets, 0, "bulk flows must stay fluid");
    assert!(run.sim_delivered_bytes > 0, "fluid flows delivered nothing");
    assert!(run.sim_events > 0);

    // The parallel hybrid engine on the same point: `EPNET_PAR=2` must
    // reproduce the serial report byte for byte. Safe without an env
    // lock for the same reason the variable exists: it selects an
    // execution detail whose output is asserted identical.
    std::env::remove_var("EPNET_PAR");
    let serial = serde_json::to_string_pretty(
        &scalebench::simulator_for(cheap).run_until(cheap.horizon),
    )
    .expect("report serializes");
    std::env::set_var("EPNET_PAR", "2");
    let parallel = serde_json::to_string_pretty(
        &scalebench::simulator_for(cheap).run_until(cheap.horizon),
    )
    .expect("report serializes");
    std::env::remove_var("EPNET_PAR");
    assert_eq!(
        serial, parallel,
        "EPNET_PAR=2 diverged from serial on the hybrid bench point"
    );

    // The committed document must already be schema v5 — million-host
    // point present, per-host heap and wall budgets inside bounds.
    let committed = std::fs::read_to_string(scalebench::output_path())
        .expect("BENCH_scale.json present at the repository root");
    let committed_names = scalebench::validate(&committed).expect("committed document validates");
    assert!(
        committed_names.iter().any(|n| n == "hybrid_fbfly_32x32x4"),
        "committed sweep records the million-host point"
    );

    // The models axis on the smallest packet point: `measure_models`
    // asserts both agreement errors against HYBRID_TOLERANCE itself.
    let small = [points[0].clone()];
    assert_eq!(small[0].name, "fbfly_2x8x2");
    let models = scalebench::measure_models(&small);
    assert_eq!(models.runs.len(), 1);

    // Render a full v5 document around the measured pieces (synthetic
    // threads/lookahead axes and million-host bench — the real ones
    // are measured by the release binary and validated above via the
    // committed document) and hold it to the schema.
    let threads = scalebench::ThreadsAxis {
        point: small[0].name.clone(),
        hw_threads: 1,
        runs: vec![
            scalebench::ThreadsRun {
                threads: 0,
                wall_ms: 1.0,
                sim_events: run.sim_events,
            },
            scalebench::ThreadsRun {
                threads: 2,
                wall_ms: 1.0,
                sim_events: run.sim_events,
            },
        ],
    };
    let hybrid_threads = scalebench::ThreadsAxis {
        point: million.name.clone(),
        hw_threads: 1,
        runs: vec![
            scalebench::ThreadsRun {
                threads: 0,
                wall_ms: 1.0,
                sim_events: run.sim_events,
            },
            scalebench::ThreadsRun {
                threads: 2,
                wall_ms: 1.0,
                sim_events: run.sim_events,
            },
        ],
    };
    let lookahead = scalebench::LookaheadAxis {
        point: small[0].name.clone(),
        width: 4,
        pairwise: synthetic_lookahead_run("pairwise"),
        global: synthetic_lookahead_run("global"),
    };
    let million_run = scalebench::ScaleRun {
        name: million.name.clone(),
        model: SimModel::Hybrid,
        hosts: scalebench::MILLION_HOSTS,
        channels: 5_144_576,
        wall_ms: 1.0,
        sim_events: 1,
        sim_packets: 0,
        sim_delivered_bytes: 1,
        measured_events: 1,
        measured_allocs: 0,
        peak_alloc_bytes: 0,
    };
    let doc = scalebench::render(
        &[run, million_run],
        &threads,
        &hybrid_threads,
        &lookahead,
        &models,
    );
    let names = scalebench::validate(&doc).expect("v5 document validates");
    assert_eq!(names, vec!["hybrid_fbfly_15x8x3", "hybrid_fbfly_32x32x4"]);
}

fn synthetic_lookahead_run(mode: &'static str) -> scalebench::LookaheadRun {
    scalebench::LookaheadRun {
        mode,
        windows: 10,
        window_events: 100,
        replay_events: 110,
        cross_batches: 4,
        cross_events: 8,
        lookahead_ps: 125_000,
        wall_ms: 1.0,
    }
}

/// The canonical scenario, traced: every emitted JSONL line must pass
/// the documented schema (DESIGN.md "Observability"), and the two
/// categories this scenario is guaranteed to exercise must be present.
/// This is the in-process twin of `tracesmoke` in
/// `scripts/bench_smoke.sh` — it fails on any emitter/validator drift.
/// It then mirrors the script's export + analysis smoke in-process:
/// the chrome-trace export must be well-formed JSON whose event and
/// per-category record counts match the source `TraceStats`, and every
/// analysis CSV must reproduce its pinned header over the real capture.
#[test]
fn traced_canonical_run_matches_documented_schema() {
    let mut sim = enginebench::canonical_simulator();
    let sink = MemorySink::new();
    sim.set_tracer(Tracer::new(sink.clone(), TraceCategory::ALL_MASK));
    let report = sim.run_until(enginebench::HORIZON);
    assert!(report.events_processed > 0);

    let text = sink.contents();
    let stats = validate_jsonl(&text).expect("trace matches documented schema");
    assert!(stats.lines > 0);
    assert!(
        stats.count(TraceCategory::Controller) > 0,
        "epoch decisions"
    );
    assert!(stats.count(TraceCategory::Reactivation) > 0, "rate changes");

    // Chrome-trace export twin: valid JSON, event count equals the
    // exporter's own tally, and no record silently dropped per category.
    let records = parse_jsonl(&text).expect("trace parses into records");
    let export = chrome_trace(&records, Some(enginebench::canonical_layout()));
    let doc: serde_json::Value =
        serde_json::from_str(&export.json).expect("chrome-trace export is valid JSON");
    let n_events = doc
        .get("traceEvents")
        .and_then(serde_json::Value::as_seq)
        .map_or(0, Vec::len);
    assert_eq!(n_events, export.trace_events + export.metadata_events);
    for cat in TraceCategory::ALL {
        assert_eq!(
            export.records.get(cat.name()).copied().unwrap_or(0),
            stats.count(cat),
            "export consumed a different number of '{}' records",
            cat.name()
        );
    }

    // Analysis twin: every CSV form runs over the real capture and
    // leads with the header the smoke script (and downstream plots)
    // key on; residency fractions must cover the whole horizon.
    let residency = analysis::residency(&records);
    let total: f64 = residency.rows.iter().map(|r| r.fraction).sum();
    assert!((total - 1.0).abs() < 1e-9, "residency sums to {total}");
    for (csv_text, header) in [
        (csv::residency_csv(&residency), "rate,fraction"),
        (
            csv::churn_csv(&analysis::churn(&records)),
            "channel,decisions,transitions,upshifts,downshifts,reversals",
        ),
        (
            csv::reactivation_csv(&analysis::reactivation_latency(&records)),
            "count,unmatched,min_ps,p50_ps,p90_ps,p99_ps,max_ps,mean_ps",
        ),
        (
            csv::credit_csv(&analysis::credit_stalls(&records)),
            "channel,stalls,total_ps,max_ps,unmatched",
        ),
        (
            csv::outcomes_csv(&analysis::outcomes(&records)),
            "reason,count,share",
        ),
    ] {
        assert_eq!(csv_text.lines().next(), Some(header));
    }
}
