//! Over-subscribed flattened butterflies (§2.1.1): "over-subscription
//! can easily be achieved, if desired, by changing the concentration".

use epnet::prelude::*;
use epnet_integration::round_robin_messages;

/// A 2:1 over-subscribed butterfly: c = 8 on a 4-ary 3-flat.
fn oversubscribed() -> FlattenedButterfly {
    FlattenedButterfly::new(8, 4, 3).unwrap()
}

#[test]
fn oversubscription_reduces_cost_per_host() {
    let over = oversubscribed();
    let full = FlattenedButterfly::new(4, 4, 3).unwrap();
    assert_eq!(over.oversubscription(), 2.0);
    assert_eq!(full.oversubscription(), 1.0);
    // Twice the hosts on the same switch count.
    assert_eq!(over.num_switches(), full.num_switches());
    assert_eq!(over.num_hosts(), 2 * full.num_hosts());
    let model = SwitchPowerModel::paper_default();
    let over_w = model.network_watts(over.num_switches() as f64, over.num_hosts() as u64);
    let full_w = model.network_watts(full.num_switches() as f64, full.num_hosts() as u64);
    let per_host_over = over_w / over.num_hosts() as f64;
    let per_host_full = full_w / full.num_hosts() as f64;
    assert!(
        per_host_over < per_host_full,
        "over-subscription must cut watts per host ({per_host_over:.1} vs {per_host_full:.1})"
    );
    // But bisection per host halves.
    let bis_over = over.bisection_gbps(40.0) / over.num_hosts() as f64;
    let bis_full = full.bisection_gbps(40.0) / full.num_hosts() as f64;
    assert!((bis_over - bis_full / 2.0).abs() < 1e-9);
}

#[test]
fn oversubscribed_fabric_saturates_at_half_uniform_load() {
    let fabric = || oversubscribed().build_fabric();
    let hosts = 128u32;
    // ~60% uniform load: above the 50% ceiling a 2:1 over-subscribed
    // fabric can carry.
    let heavy = {
        let mut v = Vec::new();
        for r in 0..120u64 {
            for h in 0..hosts {
                v.push(Message {
                    at: SimTime::from_us(1 + r * 35),
                    src: HostId::new(h),
                    dst: HostId::new((h + 1 + (17 * r as u32) % (hosts - 1)) % hosts),
                    bytes: 128 * 1024,
                });
            }
        }
        v
    };
    let report = Simulator::new(
        fabric(),
        SimConfig::baseline(),
        ReplaySource::new(heavy.clone()),
    )
    .run_until(SimTime::from_ms(6));
    assert!(
        report.delivery_ratio() < 0.95,
        "2:1 over-subscription cannot carry ~60% uniform load, got {}",
        report.delivery_ratio()
    );

    // ~25% load fits comfortably.
    let light: Vec<Message> = heavy
        .iter()
        .enumerate()
        .filter(|(i, _)| i % 3 == 0)
        .map(|(_, m)| *m)
        .collect();
    let report = Simulator::new(fabric(), SimConfig::baseline(), ReplaySource::new(light))
        .run_until(SimTime::from_ms(8));
    assert!(
        report.delivery_ratio() > 0.99,
        "light load must fit, got {}",
        report.delivery_ratio()
    );
}

#[test]
fn energy_proportional_control_on_oversubscribed_fabric() {
    let msgs = round_robin_messages(128, 8, 400, 16 * 1024);
    let report = Simulator::new(
        oversubscribed().build_fabric(),
        SimConfig::default(),
        ReplaySource::new(msgs),
    )
    .run_until(SimTime::from_ms(6));
    assert!(report.delivery_ratio() > 0.999);
    let p = report.relative_power(&LinkPowerProfile::Ideal);
    assert!(
        p < 0.3,
        "light load on over-subscribed fabric saves power, got {p:.3}"
    );
}
