//! Golden-report pin: the canonical engine scenario must serialize
//! byte-identically to the report captured before the struct-of-arrays
//! hot-state refactor.
//!
//! The SoA split, the free-list recycling (packets, messages, credit
//! buffers), the precomputed channel targets, and the calendar-queue
//! sizing hint are all pure layout/speed changes — none of them may
//! move a single event, metric, or residency picosecond. This test
//! enforces that against a checked-in fixture rather than a same-build
//! cross-check, so a regression that shifts *both* modes equally still
//! gets caught.
//!
//! Regenerate `tests/golden/canonical_report.json` only for a change
//! that intentionally alters simulation semantics, and say so in the
//! commit message:
//!
//! ```text
//! cargo test -p epnet-integration --test golden_report -- --ignored regenerate
//! ```

use epnet_bench::enginebench::{canonical_simulator, HORIZON};
use std::path::PathBuf;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("golden/canonical_report.json")
}

fn canonical_report_json() -> String {
    let report = canonical_simulator().run_until(HORIZON);
    serde_json::to_string_pretty(&report).expect("report serializes")
}

#[test]
fn canonical_report_matches_pre_refactor_golden() {
    let golden = std::fs::read_to_string(golden_path()).expect("golden fixture present");
    let actual = canonical_report_json();
    if golden != actual {
        // Pinpoint the first divergence — a full-report assert_eq dump
        // is unreadable at 2 KB.
        let byte = golden
            .bytes()
            .zip(actual.bytes())
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| golden.len().min(actual.len()));
        let lo = byte.saturating_sub(80);
        panic!(
            "canonical report diverged from the golden fixture at byte {byte}\n\
             golden:  ...{}\n\
             actual:  ...{}",
            &golden[lo..(byte + 80).min(golden.len())],
            &actual[lo..(byte + 80).min(actual.len())],
        );
    }
}

/// Rewrites the fixture. `#[ignore]`d so it never runs in CI; invoke
/// explicitly when a semantic change is intentional.
#[test]
#[ignore]
fn regenerate() {
    std::fs::write(golden_path(), canonical_report_json()).expect("fixture written");
}
