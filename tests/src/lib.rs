//! Integration-test package for the epnet workspace.
//!
//! The tests live in `tests/tests/`; this library only hosts shared
//! helpers.

#![forbid(unsafe_code)]

use epnet::prelude::*;

/// A small fabric + search workload experiment used across the
/// integration suites.
pub fn tiny_search() -> Experiment {
    Experiment::new(EvalScale::tiny(), WorkloadKind::Search)
}

/// Builds a deterministic all-pairs message list for conservation
/// checks.
pub fn round_robin_messages(hosts: u32, rounds: u64, gap_us: u64, bytes: u64) -> Vec<Message> {
    let mut v = Vec::new();
    for r in 0..rounds {
        for h in 0..hosts {
            let dst = (h + 1 + (r as u32 % (hosts - 1))) % hosts;
            v.push(Message {
                at: SimTime::from_us(1 + r * gap_us),
                src: HostId::new(h),
                dst: HostId::new(dst),
                bytes,
            });
        }
    }
    v
}
