//! Watch energy proportionality happen: record every rate change of the
//! first links of a fabric under a bursty search-like workload and
//! render them as an SVG timeline (darker = faster, grey = off).
//!
//! ```text
//! cargo run --release -p epnet-examples --bin rate_timeline [OUT.svg]
//! ```

use epnet::prelude::*;

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "rate_timeline.svg".to_owned());
    let scale = EvalScale::tiny();
    let fabric = scale.fabric();

    let mut cfg = SimConfig::builder();
    cfg.timeline_channels(24); // record the first 24 channels
    let source = ServiceTrace::builder(scale.hosts() as u32, ServiceTraceConfig::search_like())
        .seed(scale.seed)
        .horizon(scale.duration)
        .build();
    let report = Simulator::new(fabric, cfg.build(), source).run_until(scale.duration);

    println!(
        "{} rate changes across {} recorded channels in {}",
        report.timeline.len(),
        24,
        report.duration
    );
    println!(
        "network power: {:.1}% of baseline (ideal channels)",
        report.relative_power(&LinkPowerProfile::Ideal) * 100.0
    );
    let svg = epnet_report::render_timeline(&report.timeline, report.duration);
    match std::fs::write(&out, svg) {
        Ok(()) => println!("wrote {out}"),
        Err(e) => eprintln!("failed to write {out}: {e}"),
    }
}
