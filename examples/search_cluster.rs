//! A web-search cluster study: how much network power does
//! energy-proportional link tuning save, and what does independent
//! channel control add on top?
//!
//! Reproduces the Search column of the paper's Figure 8 at a reduced
//! scale, and prints the four-year dollar savings when the result is
//! extrapolated to the paper's 32k-host network (§4.2.2).
//!
//! ```text
//! cargo run --release -p epnet-examples --bin search_cluster [--quick]
//! ```

use epnet::prelude::*;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let scale = if quick {
        EvalScale::tiny()
    } else {
        EvalScale::quick()
    };
    println!(
        "simulating a {}-host search cluster for {} per run...",
        scale.hosts(),
        scale.duration
    );

    let experiment = Experiment::new(scale, WorkloadKind::Search);
    let baseline = experiment.run_baseline();

    let mut paired_cfg = SimConfig::builder();
    paired_cfg.control(ControlMode::PairedLink);
    let paired = experiment.clone().with_config(paired_cfg.build()).run_ep();

    let mut indep_cfg = SimConfig::builder();
    indep_cfg.control(ControlMode::IndependentChannel);
    let independent = experiment.with_config(indep_cfg.build()).run_ep();

    println!("\n                         paired     independent");
    for (label, profile) in [
        ("measured channels ", LinkPowerProfile::Measured),
        ("ideal channels    ", LinkPowerProfile::Ideal),
    ] {
        println!(
            "power vs baseline, {label} {:>6.1}%        {:>6.1}%",
            paired.relative_power(&profile) * 100.0,
            independent.relative_power(&profile) * 100.0
        );
    }
    println!(
        "added mean latency          {:>8}      {:>8}",
        paired.added_latency_vs(&baseline),
        independent.added_latency_vs(&baseline)
    );
    println!(
        "ideal floor (avg utilization): {:.1}%",
        baseline.avg_channel_utilization * 100.0
    );

    // Extrapolate to the paper's full-scale network: the 32k-host FBFLY
    // draws 737,280 W always-on; scale it by the measured relative power.
    let table1 = TopologyPowerComparison::paper_table1();
    let cost = EnergyCostModel::paper_default();
    let best = independent.relative_power(&LinkPowerProfile::Ideal);
    let full_watts = table1.fbfly.total_power_watts;
    println!(
        "\nextrapolated to the 32k-host network of Table 1:\n  {:.0} W -> {:.0} W ({:.1}x reduction)",
        full_watts,
        full_watts * best,
        1.0 / best
    );
    println!(
        "  four-year savings: ${:.2}M (paper reports $2.4M for its 6x reduction)",
        cost.lifetime_savings_dollars(full_watts, full_watts * best) / 1e6
    );
}
