//! Quickstart: build an energy-proportional flattened-butterfly fabric,
//! drive it with a search-like workload, and compare its power and
//! latency against the always-on baseline.
//!
//! ```text
//! cargo run --release -p epnet-examples --bin quickstart
//! ```

use epnet::prelude::*;

fn main() {
    // 1. A fabric: 64 hosts in a 4-ary 3-flat flattened butterfly
    //    (16 switches, fully connected in each of 2 dimensions).
    let scale = EvalScale::tiny();
    let topo = scale.topology();
    println!(
        "fabric: {} hosts on {} switches, {} ports each",
        topo.num_hosts(),
        topo.num_switches(),
        topo.ports_per_switch()
    );

    // 2. A workload: the paper's web-search-like trace (~6% average
    //    utilization, bursty at many timescales).
    // 3. The paper's controller: every 10 us, each link's utilization is
    //    compared against a 50% target; the link rate halves or doubles
    //    (40 <-> 2.5 Gb/s ladder), paying 1 us of reactivation per change.
    let outcome = Experiment::new(scale, WorkloadKind::Search).run();

    let report = &outcome.report;
    println!(
        "delivered {:.1} MB in {} ({} packets)",
        report.delivered_bytes as f64 / 1e6,
        report.duration,
        report.packets_delivered
    );
    println!(
        "average channel utilization (ideal EP power): {:.1}%",
        outcome.ideal_power_floor() * 100.0
    );
    println!(
        "network power vs baseline: {:.1}% (measured channels), {:.1}% (ideal channels)",
        report.relative_power(&LinkPowerProfile::Measured) * 100.0,
        report.relative_power(&LinkPowerProfile::Ideal) * 100.0
    );
    println!(
        "latency cost: +{} mean packet latency ({} -> {})",
        outcome.added_latency(),
        outcome.baseline.mean_packet_latency,
        report.mean_packet_latency
    );
    println!("link-rate reconfigurations: {}", report.reconfigurations);

    let fr = report.time_at_speed_fractions();
    println!("time at each link speed:");
    for rate in RATE_LADDER {
        println!(
            "  {:>9}: {:>5.1}%",
            rate.to_string(),
            fr[rate.index()] * 100.0
        );
    }
}
