//! Dynamic topologies (paper §5.2): power entire links off to morph the
//! flattened butterfly into a torus or mesh under low load, then
//! re-enable them as demand grows.
//!
//! The example runs the same low-utilization workload twice — once with
//! plain link-rate tuning, once with dynamic topology on top. A fifth of
//! the fabric's channel-time ends up fully powered off, yet total power
//! barely moves: rerouted traffic takes longer mesh paths, and a parked
//! 2.5 Gb/s link was already cheap. This reproduces the paper's own
//! reasoning for not chasing power-off ("very little additional power
//! savings in shutting off a link entirely", §5.2) — the win would come
//! from future chips whose idle state is far below the slowest active
//! mode.
//!
//! ```text
//! cargo run --release -p epnet-examples --bin dynamic_topology
//! ```

use epnet::prelude::*;
use epnet::workloads::ServiceTrace;

fn source(scale: EvalScale) -> Box<dyn TrafficSource> {
    // A very low-load advert-like service: prime territory for powering
    // off wraparound and chord links.
    Box::new(
        ServiceTrace::builder(scale.hosts() as u32, {
            let mut c = ServiceTraceConfig::advert_like();
            c.target_utilization = 0.02;
            c
        })
        .seed(scale.seed)
        .horizon(scale.duration)
        .build(),
    )
}

fn main() {
    let mut scale = EvalScale::tiny();
    scale.duration = SimTime::from_ms(4);
    let fabric = scale.fabric();
    println!(
        "fabric: {} hosts, {} bidirectional links",
        fabric.num_hosts(),
        fabric.num_links()
    );

    // Run 1: the paper's link-rate tuning only.
    let rate_only = Simulator::new(fabric.clone(), SimConfig::default(), source(scale))
        .run_until(scale.duration);

    // Run 2: rate tuning + dynamic topology (power-off state).
    let mut sim = Simulator::new(fabric.clone(), SimConfig::default(), source(scale));
    sim.enable_dynamic_topology(DynamicTopology::new(
        &fabric,
        DynamicTopologyConfig::default(),
    ));
    let dynamic = sim.run_until(scale.duration);

    println!("\n                          rate-tuning    +dynamic topology");
    println!(
        "power vs baseline (ideal)    {:>6.1}%            {:>6.1}%",
        rate_only.relative_power(&LinkPowerProfile::Ideal) * 100.0,
        dynamic.relative_power(&LinkPowerProfile::Ideal) * 100.0
    );
    println!(
        "power vs baseline (measured) {:>6.1}%            {:>6.1}%",
        rate_only.relative_power(&LinkPowerProfile::Measured) * 100.0,
        dynamic.relative_power(&LinkPowerProfile::Measured) * 100.0
    );
    println!(
        "channel-time powered off     {:>6.1}%            {:>6.1}%",
        rate_only.residency.off_fraction() * 100.0,
        dynamic.residency.off_fraction() * 100.0
    );
    println!(
        "mean packet latency          {:>8}          {:>8}",
        rate_only.mean_packet_latency, dynamic.mean_packet_latency
    );

    // The static subtopologies the controller is moving between:
    let mesh = LinkMask::subtopology(&fabric, SubtopologyKind::Mesh);
    let torus = LinkMask::subtopology(&fabric, SubtopologyKind::Torus);
    println!(
        "\nstatic reference points: mesh keeps {}/{} links, torus {}/{}",
        mesh.enabled_links(),
        fabric.num_links(),
        torus.enabled_links(),
        fabric.num_links()
    );
    println!(
        "(\"we can disable links in the flattened butterfly topology to make it\n appear as a multidimensional mesh\" — §5.2)"
    );
}
