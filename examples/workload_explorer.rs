//! Inspect the synthetic workloads standing in for the paper's
//! production traces: offered load, burstiness across timescales, and
//! the storage read/write asymmetry that motivates independent channel
//! control (§3.3.1, §4.2.1).
//!
//! ```text
//! cargo run --release -p epnet-examples --bin workload_explorer [HOSTS]
//! ```

use epnet::prelude::*;

fn analyze(name: &str, hosts: u32, horizon: SimTime, source: Box<dyn TrafficSource>) {
    let a = TraceAnalyzer::analyze(source, hosts, horizon);
    println!("\n== {name} ({hosts} hosts over {horizon}) ==");
    println!(
        "messages: {}   bytes: {:.1} MB   offered load: {:.1}% of line rate",
        a.messages,
        a.bytes as f64 / 1e6,
        a.offered_load_fraction * 100.0
    );
    println!("burstiness (coefficient of variation of per-bin bytes):");
    for (scale, cov) in &a.burstiness {
        println!("  {scale:>10}: {cov:>5.2}");
    }
    println!(
        "hosts with >=2x injected/received skew: {:.0}%",
        a.asymmetric_host_fraction(2.0) * 100.0
    );
    print!("top talkers:");
    for (host, bytes) in a.top_talkers(4) {
        print!(
            "  {host} ({:.1} MB, {:.1}x out/in)",
            bytes as f64 / 1e6,
            a.asymmetry_ratio(host)
        );
    }
    println!();
}

fn main() {
    let hosts: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(128);
    let horizon = SimTime::from_ms(50);

    analyze(
        "Uniform (512 KiB to random destinations)",
        hosts,
        horizon,
        Box::new(
            UniformRandom::builder(hosts)
                .offered_load(0.23)
                .horizon(horizon)
                .build(),
        ),
    );
    analyze(
        "Search-like service trace",
        hosts,
        horizon,
        Box::new(
            ServiceTrace::builder(hosts, ServiceTraceConfig::search_like())
                .horizon(horizon)
                .build(),
        ),
    );
    analyze(
        "Advert-like service trace",
        hosts,
        horizon,
        Box::new(
            ServiceTrace::builder(hosts, ServiceTraceConfig::advert_like())
                .horizon(horizon)
                .build(),
        ),
    );

    println!(
        "\nThe service traces average 5-6% load yet stay bursty at every\n\
         timescale, and their storage servers inject far more than they\n\
         receive - exactly the trace properties the paper reports (§4.1)."
    );
}
