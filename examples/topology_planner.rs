//! A datacenter-network planning tool built on the analytical models of
//! §2: given a target host count, enumerate flattened-butterfly
//! configurations, compare each against a folded-Clos of the same size,
//! and report part counts, power, and four-year energy cost.
//!
//! ```text
//! cargo run --release -p epnet-examples --bin topology_planner [HOSTS]
//! ```

use epnet::power::TopologyPowerRow;
use epnet::prelude::*;
use epnet::topology::ChassisSpec;

fn main() {
    let hosts: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(32_768);
    let model = SwitchPowerModel::paper_default();
    let cost = EnergyCostModel::paper_default();
    let max_ports = model.ports(); // 36-port chips, as in the paper

    println!("planning a {hosts}-host network from {max_ports}-port, 100 W switch chips\n");

    // Enumerate (c, k, n) flattened butterflies that reach the target
    // host count without over-subscription (c <= k) and fit the radix.
    let mut candidates: Vec<(FlattenedButterfly, TopologyPowerRow)> = Vec::new();
    for n in 2..=5usize {
        for k in 2..=max_ports {
            let c = k; // full bisection: one host per dimension peer
            let Ok(f) = FlattenedButterfly::new(c, k, n) else {
                continue;
            };
            if f.ports_per_switch() > max_ports || (f.num_hosts() as u64) < hosts {
                continue;
            }
            let row = TopologyPowerRow::from_fbfly(&f, &model, 40.0);
            candidates.push((f, row));
        }
    }
    candidates.sort_by(|a, b| a.1.total_power_watts.total_cmp(&b.1.total_power_watts));

    println!(
        "{:<22} {:>8} {:>8} {:>10} {:>12} {:>12}",
        "FBFLY config", "hosts", "chips", "power (W)", "W/(Gb/s)", "4yr cost"
    );
    for (f, row) in candidates.iter().take(5) {
        println!(
            "{:<22} {:>8} {:>8.0} {:>10.0} {:>12.3} {:>11.2}M",
            format!("({}, {}, {})", f.concentration(), f.radix(), f.flat_n()),
            row.hosts,
            row.switch_chips,
            row.total_power_watts,
            row.watts_per_gbps(),
            cost.lifetime_cost_dollars(row.total_power_watts) / 1e6
        );
    }

    let Some((best_fbfly, best_row)) = candidates.first() else {
        println!("no flattened butterfly fits {hosts} hosts on {max_ports}-port chips");
        return;
    };

    // The folded-Clos alternative at the same host count.
    let clos = FoldedClos::new(best_fbfly.num_hosts() as u64, ChassisSpec::paper_324_port())
        .expect("host count is positive");
    let comparison = TopologyPowerComparison::new(&clos, best_fbfly, &model, 40.0);
    println!("\nbest flattened butterfly vs folded-Clos at equal size:\n");
    print!("{}", comparison.to_table());
    println!(
        "\nchoosing the flattened butterfly saves {:.0} W = ${:.2}M over four years",
        comparison.savings_watts(),
        cost.lifetime_cost_dollars(comparison.savings_watts()) / 1e6
    );
    let fe = best_fbfly.electrical_link_fraction();
    println!(
        "{:.0}% of its links enjoy packaging locality (cheap electrical cabling)",
        fe * 100.0
    );

    // Capital expenditure side: "it uses fewer optical transceivers and
    // fewer switching chips than a comparable folded-Clos" (§2.1).
    let fbfly_bom = BillOfMaterials::for_fbfly(best_fbfly);
    let clos_bom = BillOfMaterials::for_clos(&clos);
    let saved = fbfly_bom.savings_vs(&clos_bom);
    println!(
        "capex parts saved vs Clos: {} switch chips, {} optical transceivers, {} optical cables",
        saved.switch_chips, saved.optical_transceivers, saved.optical_cables
    );
    let _ = best_row;
}
